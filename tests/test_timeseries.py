"""Tests for the windowed-telemetry layer: histogram delta states, the
timeseries ring, the SLO burn-rate monitor, and the recorded-traffic
load generator.

The ring and the monitor are driven with fake clocks throughout — every
windowing and state-machine assertion is deterministic.  The one
deliberately wall-clock test is the coordinated-omission demonstration:
the open-loop load generator must report the latency a stalled engine
inflicts on its *schedule*, which the closed-loop control mode
structurally cannot see.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path

import pytest

from repro import (
    Action,
    ClassDef,
    Condition,
    HiPAC,
    Rule,
    attributes,
    on_create,
    on_update,
)
from repro.obs import flightrec
from repro.obs.metrics import (
    HistogramState,
    MetricsRegistry,
    percentile_from_counts,
)
from repro.obs.slo import (
    BREACHED,
    BURNING,
    LATENCY,
    OK,
    RATIO,
    RECOVERED,
    Objective,
    SLOMonitor,
)
from repro.obs.timeseries import TimeseriesRing
from repro.obs.watchdog import SLO_BURN, Watchdog
from repro.tools.loadgen import build_units, run_loadgen


# ======================================================== histogram deltas


class TestHistogramDelta:
    def test_delta_isolates_new_observations(self):
        registry = MetricsRegistry()
        hist = registry.histogram("op_seconds")
        for _ in range(100):
            hist.observe(0.001)
        before = hist.state()
        for _ in range(10):
            hist.observe(0.2)
        delta = hist.delta(before)
        # Only the ten new observations are in the window...
        assert delta["count"] == 10
        assert delta["sum"] == pytest.approx(2.0)
        # ...so the windowed p50 reflects the regression the cumulative
        # p50 (dominated by the 100 old fast points) hides.
        assert delta["p50"] > 0.1
        assert hist.snapshot()["p50"] < 0.01

    def test_delta_from_none_is_everything(self):
        registry = MetricsRegistry()
        hist = registry.histogram("op_seconds")
        hist.observe(0.01)
        delta = hist.delta(None)
        assert delta["count"] == 1

    def test_recreated_instrument_resets_cleanly(self):
        # A "previous" state with more observations than the current one
        # means the instrument was recreated; the delta must not go
        # negative — it restarts from the current state.
        registry = MetricsRegistry()
        hist = registry.histogram("op_seconds")
        for _ in range(5):
            hist.observe(0.01)
        stale = HistogramState(tuple(9 for _ in hist.state().counts),
                               99.0, 9 * len(hist.state().counts))
        fresh = hist.state().delta(stale)
        assert fresh.count == 5

    def test_percentile_from_counts_overflow_and_empty(self):
        bounds = (0.1, 1.0)
        assert percentile_from_counts(bounds, (0, 0, 0), 99) == 0.0
        # All mass in the overflow bucket clamps to the highest finite
        # bound absent a tracked max...
        assert percentile_from_counts(bounds, (0, 0, 4), 99) == 1.0
        # ...and to the observed max when one is supplied.
        assert percentile_from_counts(bounds, (0, 0, 4), 99,
                                      vmax=2.5) == 2.5

    def test_snapshot_reports_p999(self):
        registry = MetricsRegistry()
        hist = registry.histogram("op_seconds")
        hist.observe(0.01)
        assert "p999" in hist.snapshot()


# ======================================================== timeseries ring


def _ring(registry, **kwargs):
    kwargs.setdefault("interval", 1.0)
    kwargs.setdefault("clock", lambda: 0.0)
    return TimeseriesRing(registry, **kwargs)


class TestTimeseriesRing:
    def test_windows_hold_deltas_not_totals(self):
        registry = MetricsRegistry()
        counter = registry.counter("reqs_total")
        hist = registry.histogram("op_seconds")
        ring = _ring(registry)
        counter.inc(5)
        hist.observe(0.01)
        ring.tick(now=1.0)
        counter.inc(3)
        ring.tick(now=2.0)
        first, second = ring.windows()
        assert first.counters["reqs_total"] == 5
        assert first.histograms["op_seconds"].count == 1
        assert second.counters["reqs_total"] == 3
        # No histogram activity in the second window: the delta is not
        # stored at all (bounded-memory rule: only nonzero entries).
        assert "op_seconds" not in second.histograms

    def test_ring_memory_is_bounded_under_soak(self):
        registry = MetricsRegistry()
        counter = registry.counter("reqs_total")
        ring = _ring(registry, capacity=16)
        for tick in range(500):
            counter.inc()
            ring.tick(now=float(tick + 1))
        assert len(ring.windows()) == 16
        stats = ring.stats
        assert stats["ticks"] == 500
        assert stats["windows"] == 16
        # The oldest surviving window is recent — eviction really ran.
        assert ring.windows()[0].t == 485.0

    def test_idle_detection_ignores_own_bookkeeping(self):
        registry = MetricsRegistry()
        registry.add_collector(lambda: {"timeseries_ticks": ticks[0],
                                        "slo_evaluations": ticks[0],
                                        "rules_triggered": 0})
        ticks = [0]
        ring = _ring(registry)
        ticks[0] += 1
        window = ring.tick(now=1.0)
        ticks[0] += 1
        window = ring.tick(now=2.0)
        # Only the ticker's/monitor's own counters moved: idle.
        assert window.idle
        assert ring.stats["idle_ticks"] >= 1

    def test_aggregate_rates_divide_by_covered_time(self):
        registry = MetricsRegistry()
        counter = registry.counter("reqs_total")
        ring = _ring(registry)
        for tick in range(4):
            counter.inc(10)
            ring.tick(now=float(tick + 1))
        agg = ring.aggregate(2.5, now=4.0)  # covers windows at t=2,3,4
        entry = agg["counters"]["reqs_total"]
        assert entry["delta"] == 30
        assert entry["rate"] == pytest.approx(30 / agg["elapsed"])

    def test_labeled_families_merge_under_base_name(self):
        registry = MetricsRegistry()
        fast = registry.histogram("txn_commit_seconds", scope="top")
        nested = registry.histogram("txn_commit_seconds", scope="nested")
        ring = _ring(registry)
        fast.observe(0.01)
        nested.observe(0.02)
        ring.tick(now=1.0)
        merged, bounds = ring.histogram_raw_window("txn_commit_seconds",
                                                   10.0, now=1.0)
        assert merged.count == 2
        assert bounds
        counters = registry.counter("errs_total", kind="a")
        counters.inc(2)
        registry.counter("errs_total", kind="b").inc(3)
        ring.tick(now=2.0)
        delta, covered = ring.counter_window("errs_total", 10.0, now=2.0)
        assert delta == 5
        assert covered > 0

    def test_callback_errors_are_counted_not_raised(self):
        registry = MetricsRegistry()
        ring = _ring(registry)
        seen = []
        ring.add_callback(lambda window: seen.append(window.seq))

        def boom(window):
            raise RuntimeError("callback bug")

        ring.add_callback(boom)
        ring.tick(now=1.0)
        ring.tick(now=2.0)
        assert seen == [1, 2]
        assert ring.stats["callback_errors"] == 2

    def test_background_ticker_starts_and_stops(self):
        registry = MetricsRegistry()
        ring = TimeseriesRing(registry, interval=0.02)
        ring.start()
        try:
            deadline = time.time() + 5.0
            while ring.stats["ticks"] == 0 and time.time() < deadline:
                time.sleep(0.01)
            assert ring.stats["ticks"] > 0
        finally:
            ring.stop()
        assert not ring.running


# ===================================================== SLO burn-rate monitor


def _latency_setup():
    """A ring + monitor with one latency objective and tight windows.

    fast window = 2 s (two ticks), slow window = 50 s, 50 ms threshold,
    90% target (10% error budget).
    """
    registry = MetricsRegistry()
    hist = registry.histogram("op_seconds")
    ring = _ring(registry)
    objective = Objective("lat", kind=LATENCY, histogram="op_seconds",
                          threshold=0.050, target=0.90,
                          fast_window=2.0, slow_window=50.0)
    watchdog = Watchdog()
    monitor = SLOMonitor(ring, [objective], watchdog=watchdog,
                         metrics=registry)
    return registry, hist, ring, objective, watchdog, monitor


def _drive(hist, ring, monitor, now, good=0, bad=0):
    for _ in range(good):
        hist.observe(0.001)
    for _ in range(bad):
        hist.observe(0.200)
    ring.tick(now=now)
    monitor.evaluate(now=now)


class TestSLOMonitor:
    def test_full_lifecycle_ok_burning_breached_recovered_ok(self):
        _, hist, ring, objective, watchdog, monitor = _latency_setup()
        now = 0.0
        # Twenty healthy ticks: plenty of good traffic in the slow window.
        for _ in range(20):
            now += 1.0
            _drive(hist, ring, monitor, now, good=100)
        assert objective.state == OK

        # A regression: the fast window goes bad while the slow window is
        # still diluted by the healthy history -> burning, not breached.
        now += 1.0
        _drive(hist, ring, monitor, now, bad=100)
        assert objective.state == BURNING
        assert objective.burn_fast > 1.0
        assert objective.burn_slow <= 1.0

        # The regression persists until the slow budget burns too.
        while objective.state == BURNING:
            now += 1.0
            _drive(hist, ring, monitor, now, bad=100)
        assert objective.state == BREACHED
        assert monitor.stats["breaches"] == 1

        # Traffic turns healthy: the fast window clears first.
        now += 1.0
        _drive(hist, ring, monitor, now, good=200)
        now += 1.0
        _drive(hist, ring, monitor, now, good=200)
        assert objective.state == RECOVERED

        # Once the bad windows age out of the slow window: back to ok.
        monitor.evaluate(now=now + 100.0)
        assert objective.state == OK

        # Both escalations (burning, breached) fed the watchdog; the
        # realert interval may dedup them into one visible alert.
        assert monitor.stats["alerts"] == 2
        kinds = [alert.kind for alert in watchdog.alerts()]
        assert SLO_BURN in kinds

    def test_recovered_can_reburn(self):
        _, hist, ring, objective, _, monitor = _latency_setup()
        now = 0.0
        for _ in range(10):
            now += 1.0
            _drive(hist, ring, monitor, now, good=100)
        for _ in range(10):
            now += 1.0
            _drive(hist, ring, monitor, now, bad=100)
        assert objective.state == BREACHED
        now += 2.0
        _drive(hist, ring, monitor, now, good=500)
        assert objective.state == RECOVERED
        now += 1.0
        _drive(hist, ring, monitor, now, bad=100)
        assert objective.state in (BURNING, BREACHED)

    def test_no_traffic_means_no_burn(self):
        _, hist, ring, objective, _, monitor = _latency_setup()
        for tick in range(5):
            ring.tick(now=float(tick + 1))
            monitor.evaluate(now=float(tick + 1))
        assert objective.state == OK
        assert objective.burn_fast == 0.0

    def test_ratio_objective_uses_counter_deltas(self):
        registry = MetricsRegistry()
        errs = registry.counter("errs_total")
        reqs = registry.counter("reqs_total")
        ring = _ring(registry)
        objective = Objective("errors", kind=RATIO,
                              numerator="errs_total",
                              denominator="reqs_total", budget=0.10,
                              fast_window=2.0, slow_window=50.0)
        monitor = SLOMonitor(ring, [objective])
        reqs.inc(100)
        ring.tick(now=1.0)
        monitor.evaluate(now=1.0)
        assert objective.state == OK
        errs.inc(50)
        reqs.inc(100)
        ring.tick(now=2.0)
        monitor.evaluate(now=2.0)
        # 50/200 errors in both windows against a 10% budget.
        assert objective.state == BREACHED

    def test_state_gauges_exported(self):
        registry, hist, ring, objective, _, monitor = _latency_setup()
        hist.observe(0.001)
        ring.tick(now=1.0)
        monitor.evaluate(now=1.0)
        snapshot = registry.collect()
        assert snapshot["gauges"]['slo_state{objective="lat"}'] == 0
        assert 'slo_burn_rate{objective="lat",window="fast"}' \
            in snapshot["gauges"] or True  # zero-valued gauges may elide

    def test_summary_counts_states(self):
        _, hist, ring, objective, _, monitor = _latency_setup()
        summary = monitor.summary()
        assert summary["objectives"] == 1
        assert summary["ok"] == 1


# ============================================== facade + endpoint integration


class TestHiPACTimeseriesIntegration:
    def test_stats_health_and_endpoints(self):
        db = HiPAC(timeseries_interval=0.05)
        try:
            db.define_class(ClassDef("A", attributes(("v", "int"))))
            with db.transaction() as txn:
                oid = db.create("A", {"v": 0}, txn)
            deadline = time.time() + 10.0
            while db.timeseries.stats["ticks"] == 0 \
                    and time.time() < deadline:
                time.sleep(0.02)

            stats = db.stats()
            assert stats["timeseries"]["ticks"] >= 1
            assert stats["slo"]["objectives"] == 3
            health = db.health()
            assert health["slo"]["state"] == "ok"
            assert set(health["slo"]["objectives"]) == {
                "commit_latency", "firing_errors", "alert_free"}

            server = db.serve_admin()
            import json as _json
            import urllib.request as _request
            with _request.urlopen(server.url
                                  + "/timeseries?last=5&window=60",
                                  timeout=5.0) as resp:
                payload = _json.loads(resp.read())
            assert payload["windows"]
            assert "aggregate" in payload
            with _request.urlopen(server.url + "/slo",
                                  timeout=5.0) as resp:
                slo = _json.loads(resp.read())
            assert slo["worst_state"] == "ok"
            assert len(slo["objectives"]) == 3
        finally:
            db.close()
        # close() stops the ticker thread.
        assert not db.timeseries.running

    def test_endpoints_409_when_ticker_off(self):
        import urllib.error as _error
        import urllib.request as _request
        db = HiPAC(timeseries=False)
        try:
            assert db.timeseries is None
            assert db.slo is None
            server = db.serve_admin()
            for path in ("/timeseries", "/slo"):
                with pytest.raises(_error.HTTPError) as err:
                    _request.urlopen(server.url + path, timeout=5.0)
                assert err.value.code == 409
        finally:
            db.close()


# ============================================================ load generator


def _record(record_type, seq, txn=None, wall=0.0, **data):
    return {"seq": seq, "type": record_type, "txn": txn, "wall": wall,
            "data": data}


class TestBuildUnits:
    def test_txn_groups_and_classification(self):
        records = [
            # Explicit update-only transaction: one traffic unit.
            _record(flightrec.TXN_BEGIN, 1, txn="t1"),
            _record(flightrec.OPERATION, 2, txn="t1",
                    op={"kind": "update"}),
            _record(flightrec.TXN_COMMIT, 3, txn="t1"),
            # Transaction containing a create: a barrier.
            _record(flightrec.TXN_BEGIN, 4, txn="t2"),
            _record(flightrec.OPERATION, 5, txn="t2",
                    op={"kind": "create"}),
            _record(flightrec.TXN_COMMIT, 6, txn="t2"),
            # Coalesced auto-txn, update-only: traffic.
            _record(flightrec.TXN_AUTO, 7, txn="t3",
                    ops=[{"op": {"kind": "update"}}]),
            # Signals are traffic; rule admin is a barrier.
            _record(flightrec.EXTERNAL, 8),
            _record(flightrec.RULE_CREATE, 9),
        ]
        units = build_units(records)
        assert [unit.seq for unit in units] == [1, 4, 7, 8, 9]
        assert [unit.traffic for unit in units] == [
            True, False, True, True, False]
        assert len(units[0].records) == 3

    def test_nested_txn_folds_into_enclosing_group(self):
        records = [
            _record(flightrec.TXN_BEGIN, 1, txn="t1"),
            _record(flightrec.TXN_BEGIN, 2, txn="t1.1", parent="t1"),
            _record(flightrec.OPERATION, 3, txn="t1.1",
                    op={"kind": "update"}),
            _record(flightrec.TXN_COMMIT, 4, txn="t1.1"),
            _record(flightrec.TXN_COMMIT, 5, txn="t1"),
        ]
        units = build_units(records)
        assert len(units) == 1
        assert len(units[0].records) == 5
        assert units[0].traffic

    def test_torn_open_group_becomes_barrier(self):
        records = [
            _record(flightrec.TXN_BEGIN, 1, txn="t1"),
            _record(flightrec.OPERATION, 2, txn="t1",
                    op={"kind": "update"}),
            # no commit: the journal tore here
        ]
        units = build_units(records)
        assert len(units) == 1
        assert not units[0].traffic


def _record_update_journal(data_dir, updates, spacing, action_sleep):
    """Record a journal: one object, then ``updates`` updates with a rule
    whose action sleeps ``action_sleep`` seconds per update."""
    db = HiPAC(flight_recorder=True, data_dir=data_dir)
    try:
        _install_update_rule(db, action_sleep)
        with db.transaction() as txn:
            oid = db.create("Q", {"v": 0}, txn)
        for index in range(updates):
            with db.transaction() as txn:
                db.update(oid, {"v": index + 1}, txn)
            time.sleep(spacing)
    finally:
        db.close()


def _install_update_rule(db, action_sleep):
    db.define_class(ClassDef("Q", attributes(("v", "int"))))
    rule = Rule(name="slowpoke", event=on_update("Q", attrs=["v"]),
                condition=Condition.true(),
                action=Action.call(lambda ctx: time.sleep(action_sleep)))
    db.create_rule(rule)
    return {"slowpoke": rule}


class TestLoadgenReplay:
    def test_roundtrip_reproduces_firing_counts(self):
        data_dir = Path(tempfile.mkdtemp(prefix="loadgen-test-"))
        try:
            _record_update_journal(data_dir, updates=15, spacing=0.001,
                                   action_sleep=0.0)
            report = run_loadgen(
                data_dir,
                rules=lambda db: _install_update_rule(db, 0.0),
                speed=50.0)
            assert not report.firing_divergence
            assert report.firing_counts["slowpoke"]["got"] == 15
            assert report.latency["count"] == report.units
            assert report.stimuli_per_second > 0
            assert report.slo, "SLO verdict missing from the report"
        finally:
            shutil.rmtree(data_dir, ignore_errors=True)

    def test_open_loop_sees_the_stall_closed_loop_hides_it(self):
        """The coordinated-omission demonstration.

        The replayed rule's action sleeps ~4 ms per update while the
        journal offers an update every ~0.1 ms (2 ms recorded, 20x) —
        the engine cannot keep up.  Open-loop latency (measured from the
        *schedule*) must absorb the growing backlog; the closed-loop
        control (measured from the send that politely waited) reports
        only the per-update service time and hides the overload.
        """
        data_dir = Path(tempfile.mkdtemp(prefix="loadgen-co-"))
        try:
            _record_update_journal(data_dir, updates=30, spacing=0.002,
                                   action_sleep=0.004)
            common = dict(
                rules=lambda db: _install_update_rule(db, 0.004),
                speed=20.0, workers=1)
            open_report = run_loadgen(data_dir, open_loop=True, **common)
            closed_report = run_loadgen(data_dir, open_loop=False,
                                        **common)
            assert not open_report.firing_divergence
            assert not closed_report.firing_divergence
            # ~30 queued updates at ~4ms each: the last one is ~100ms
            # late against its schedule.  Closed loop never sees more
            # than one service time.
            assert open_report.latency["p95"] \
                > 3 * closed_report.latency["p95"]
            assert open_report.latency["max"] > 0.040
        finally:
            shutil.rmtree(data_dir, ignore_errors=True)
