"""Tests for the Securities Analyst's Assistant (paper §4.2, Figure 4.2)."""

import pytest

from repro import HiPAC, Query
from repro.saa import (
    POSITION_CLASS,
    STOCK_CLASS,
    TRADE_CLASS,
    SecuritiesAssistant,
)
from repro.workloads import MarketDataGenerator


@pytest.fixture
def saa():
    db = HiPAC(lock_timeout=5.0)
    assistant = SecuritiesAssistant(db, coupling="immediate")
    assistant.add_ticker("NYSE")
    assistant.add_display("alice")
    assistant.add_trader("TRDSVC")
    return assistant


class TestTicker:
    def test_first_quote_creates_stock(self, saa):
        ticker = saa.tickers["NYSE"]
        ticker.push_quote("XRX", 45.0)
        with saa.db.transaction() as txn:
            stocks = saa.db.query(Query(STOCK_CLASS), txn)
        assert stocks.values("symbol") == ["XRX"]
        assert ticker.stats["created"] == 1

    def test_subsequent_quotes_update(self, saa):
        ticker = saa.tickers["NYSE"]
        ticker.push_quote("XRX", 45.0)
        ticker.push_quote("XRX", 46.0)
        with saa.db.transaction() as txn:
            stocks = saa.db.query(Query(STOCK_CLASS), txn)
        assert len(stocks) == 1
        assert stocks.first()["price"] == 46.0


class TestDisplayRules:
    def test_ticker_window_scrolls_quotes(self, saa):
        ticker = saa.tickers["NYSE"]
        display = saa.displays["alice"]
        ticker.push_quote("XRX", 45.0)   # create: no update event
        ticker.push_quote("XRX", 46.0)
        ticker.push_quote("XRX", 47.0)
        saa.drain()
        assert [(e.symbol, e.price) for e in display.ticker_window] == \
            [("XRX", 46.0), ("XRX", 47.0)]

    def test_every_display_gets_every_quote(self, saa):
        bob = saa.add_display("bob")
        ticker = saa.tickers["NYSE"]
        ticker.push_quote("XRX", 45.0)
        ticker.push_quote("XRX", 46.0)
        saa.drain()
        assert len(saa.displays["alice"].ticker_window) == 1
        assert len(bob.ticker_window) == 1


class TestTradingRules:
    def test_trade_executes_at_limit(self, saa):
        saa.add_trading_rule(client="A", symbol="XRX", shares=500,
                             limit=50.0, service="TRDSVC")
        ticker = saa.tickers["NYSE"]
        ticker.push_quote("XRX", 45.0)
        ticker.push_quote("XRX", 49.0)
        assert saa.traders["TRDSVC"].stats["trades"] == 0
        ticker.push_quote("XRX", 50.0)
        saa.drain()
        assert saa.traders["TRDSVC"].stats["trades"] == 1

    def test_one_shot_rule_fires_once(self, saa):
        saa.add_trading_rule(client="A", symbol="XRX", shares=500,
                             limit=50.0, service="TRDSVC")
        ticker = saa.tickers["NYSE"]
        ticker.push_quote("XRX", 51.0)
        ticker.push_quote("XRX", 52.0)
        ticker.push_quote("XRX", 53.0)
        saa.drain()
        assert saa.traders["TRDSVC"].stats["trades"] == 1

    def test_other_symbols_do_not_trigger(self, saa):
        saa.add_trading_rule(client="A", symbol="XRX", shares=500,
                             limit=50.0, service="TRDSVC")
        ticker = saa.tickers["NYSE"]
        ticker.push_quote("XRX", 45.0)
        ticker.push_quote("IBM", 99.0)
        ticker.push_quote("IBM", 100.0)
        saa.drain()
        assert saa.traders["TRDSVC"].stats["trades"] == 0

    def test_trade_records_position_and_trade(self, saa):
        saa.add_trading_rule(client="A", symbol="XRX", shares=300,
                             limit=50.0, service="TRDSVC")
        ticker = saa.tickers["NYSE"]
        ticker.push_quote("XRX", 49.0)
        ticker.push_quote("XRX", 55.0)
        saa.drain()
        with saa.db.transaction() as txn:
            trades = saa.db.query(Query(TRADE_CLASS), txn)
            positions = saa.db.query(Query(POSITION_CLASS), txn)
        assert trades.values("shares") == [300]
        assert positions.values("shares") == [300]

    def test_trade_displayed_via_event_rule(self, saa):
        """The trade-executed external event drives the display rule that
        shows the trade and updates the portfolio view (paper §4.2)."""
        saa.add_trading_rule(client="A", symbol="XRX", shares=200,
                             limit=50.0, service="TRDSVC")
        ticker = saa.tickers["NYSE"]
        ticker.push_quote("XRX", 48.0)
        ticker.push_quote("XRX", 52.0)
        saa.drain()
        display = saa.displays["alice"]
        assert display.trade_log == [{"symbol": "XRX", "shares": 200,
                                      "price": 52.0, "client": "A"}]
        assert display.portfolio_view[("A", "XRX")] == 200

    def test_unknown_service_rejected(self, saa):
        with pytest.raises(KeyError):
            saa.add_trading_rule(client="A", symbol="XRX", shares=1,
                                 limit=1.0, service="NOPE")


class TestParadigmObservations:
    def test_no_direct_program_interactions(self, saa):
        """§4.2: 'There are no direct interactions between the application
        programs.  All interactions take place through rules firing.'"""
        saa.add_trading_rule(client="A", symbol="XRX", shares=100,
                             limit=50.0, service="TRDSVC")
        ticker = saa.tickers["NYSE"]
        for price in (48.0, 51.0, 52.0):
            ticker.push_quote("XRX", price)
        saa.drain()
        assert saa.direct_program_interactions() == 0
        assert saa.rule_mediated_interactions() > 0

    def test_behavior_changed_by_rules_not_software(self, saa):
        """§4.2: 'To modify the behavior of the application, we would change
        the rules rather than the software.'  Disabling the display rule
        stops quote delivery without touching any program."""
        ticker = saa.tickers["NYSE"]
        ticker.push_quote("XRX", 45.0)
        ticker.push_quote("XRX", 46.0)
        saa.db.disable_rule("saa:ticker-window:alice")
        ticker.push_quote("XRX", 47.0)
        saa.drain()
        assert len(saa.displays["alice"].ticker_window) == 1


class TestSeparateCouplingSAA:
    def test_paper_coupling_end_to_end(self):
        """The SAA with the paper's actual coupling (separate) delivers the
        same results asynchronously."""
        db = HiPAC(lock_timeout=5.0)
        saa = SecuritiesAssistant(db)  # separate coupling
        ticker = saa.add_ticker("NYSE")
        display = saa.add_display("alice")
        trader = saa.add_trader("TRDSVC")
        saa.add_trading_rule(client="A", symbol="XRX", shares=100,
                             limit=50.0, service="TRDSVC")
        gen = MarketDataGenerator(["XRX", "IBM"], seed=3,
                                  initial_price=45.0, step=2.0)
        for quote in gen.stream(120):
            ticker.push_quote(quote.symbol, quote.price)
        assert saa.drain(timeout=30.0)
        assert trader.stats["trades"] == 1
        assert display.trade_log
        assert db.rule_manager.background_errors == []
