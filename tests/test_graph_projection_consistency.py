"""Property test: condition-graph answers with projections, ordering, and
limits must equal the executor's answers for the same query."""

from hypothesis import given, settings, strategies as st

from repro import (
    Attr,
    AttrType,
    AttributeDef,
    ClassDef,
    Condition,
    HiPAC,
    Query,
)
from repro.events.signal import EventSignal

query_shapes = st.fixed_dictionaries({
    "project": st.sampled_from([None, ("name",), ("name", "qty")]),
    "order_by": st.sampled_from([None, "qty", "name"]),
    "descending": st.booleans(),
    "limit": st.sampled_from([None, 0, 1, 3]),
    "threshold": st.integers(0, 15),
})

datasets = st.lists(st.tuples(st.text(alphabet="abc", min_size=1, max_size=2),
                              st.integers(0, 20)),
                    max_size=10)


def build(shape, data):
    db = HiPAC(lock_timeout=2.0)
    db.define_class(ClassDef("Item", (
        AttributeDef("name", AttrType.STRING, required=True),
        AttributeDef("qty", AttrType.INT, default=0),
    )))
    query = Query("Item", Attr("qty") > shape["threshold"],
                  project=shape["project"], order_by=shape["order_by"],
                  descending=shape["descending"], limit=shape["limit"])
    condition = Condition.of(query)
    with db.transaction() as txn:
        db.condition_evaluator.add_rule(condition, txn)
    with db.transaction() as txn:
        for name, qty in data:
            db.create("Item", {"name": name, "qty": qty}, txn)
    return db, query, condition


def rows_as_tuples(result):
    return [(row.oid, tuple(sorted(row.attrs.items()))) for row in result.rows]


class TestGraphAnswersMatchExecutor:
    @settings(max_examples=80, deadline=None)
    @given(shape=query_shapes, data=datasets)
    def test_graph_path_equals_executor_path(self, shape, data):
        db, query, condition = build(shape, data)
        signal = EventSignal(kind="external", name="probe", args={})
        with db.transaction() as txn:
            outcome = db.condition_evaluator.evaluate(condition, signal, txn)
        with db.transaction() as txn:
            direct = db.query(query, txn)
        assert db.condition_evaluator.stats["graph_answers"] == 1
        assert rows_as_tuples(outcome.results[0]) == rows_as_tuples(direct)
        assert outcome.satisfied == bool(direct)
