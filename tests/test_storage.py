"""Shared segment store tests: framing, mixed-format reads, rotation,
group commit, and the compatibility path for pre-refactor JSONL logs.

The WAL- and journal-level behaviours (recovery sweeps, replay) live in
``test_wal_recovery.py`` / ``test_flightrec.py``; this file exercises the
storage layer directly, plus the one end-to-end compatibility claim: a
data directory written by the old single-file JSONL WAL still recovers.
"""

from __future__ import annotations

import json
import threading
import time
import zlib

import pytest

from repro import HiPAC
from repro.recovery.recover import recover
from repro.storage import (
    FRAME_HEADER_SIZE,
    SegmentWriter,
    encode_frame,
    legacy_record_ok,
    read_stream,
    scan_segment,
    segment_files,
)
from repro.storage.framing import scan_frames


def legacy_line(record: dict) -> str:
    """Render one record in the pre-refactor JSONL format: canonical
    compact JSON with an embedded crc over the other fields."""
    payload = json.dumps(record, sort_keys=True, separators=(",", ":"))
    framed = dict(record, crc=zlib.crc32(payload.encode("utf-8")))
    return json.dumps(framed, sort_keys=True, separators=(",", ":"))


class TestFraming:
    def test_binary_frame_round_trip(self):
        records = [{"seq": i, "type": "external",
                    "data": {"n": i, "text": "päyload-%d" % i}}
                   for i in range(1, 6)]
        blob = b"".join(encode_frame(r) for r in records)
        decoded, discarded = scan_frames(blob, "seq", 0)
        assert decoded == records
        assert discarded == 0

    def test_crc_corruption_mid_segment_stops_the_scan(self):
        records = [{"seq": i, "data": {"n": i}} for i in range(1, 6)]
        frames = [bytearray(encode_frame(r)) for r in records]
        frames[2][FRAME_HEADER_SIZE + 2] ^= 0xFF  # payload byte of seq 3
        blob = b"".join(bytes(f) for f in frames)
        decoded, discarded = scan_frames(blob, "seq", 0)
        assert [r["seq"] for r in decoded] == [1, 2]
        assert discarded == sum(len(f) for f in frames[2:])

    def test_torn_header_and_torn_payload_are_discarded(self):
        good = encode_frame({"seq": 1, "data": {}})
        tail = encode_frame({"seq": 2, "data": {"pad": "x" * 64}})
        for cut in (1, FRAME_HEADER_SIZE, len(tail) - 1):
            decoded, discarded = scan_frames(good + tail[:cut], "seq", 0)
            assert [r["seq"] for r in decoded] == [1]
            assert discarded == cut

    def test_non_increasing_seq_is_distrusted(self):
        blob = (encode_frame({"seq": 1}) + encode_frame({"seq": 3})
                + encode_frame({"seq": 3}) + encode_frame({"seq": 4}))
        decoded, discarded = scan_frames(blob, "seq", 0)
        assert [r["seq"] for r in decoded] == [1, 3]
        assert discarded > 0

    def test_batch_frame_round_trip(self):
        batch = [{"seq": i, "data": {"n": i}} for i in range(1, 4)]
        blob = (encode_frame(batch) + encode_frame({"seq": 4, "data": {}})
                + encode_frame([{"seq": i, "data": {}} for i in (5, 6)]))
        decoded, discarded = scan_frames(blob, "seq", 0)
        assert [r["seq"] for r in decoded] == [1, 2, 3, 4, 5, 6]
        assert discarded == 0

    def test_batch_frame_is_atomic(self):
        # A non-increasing seq inside a batch rejects the whole frame —
        # never a half-applied prefix of it.
        bad = encode_frame([{"seq": 2, "data": {}}, {"seq": 2, "data": {}}])
        blob = encode_frame({"seq": 1, "data": {}}) + bad
        decoded, discarded = scan_frames(blob, "seq", 0)
        assert [r["seq"] for r in decoded] == [1]
        assert discarded == len(bad)

    def test_legacy_record_ok_verifies_embedded_crc(self):
        line = legacy_line({"seq": 1, "data": {"n": 1}})
        record = json.loads(line)
        assert legacy_record_ok(record)
        record["data"]["n"] = 2
        assert not legacy_record_ok(record)

    def test_segment_sniffs_format_from_first_byte(self, tmp_path):
        binary = tmp_path / "a-00000001.seg"
        binary.write_bytes(encode_frame({"seq": 1, "data": {}}))
        jsonl = tmp_path / "a-00000002.jsonl"
        jsonl.write_text(legacy_line({"seq": 2, "data": {}}) + "\n",
                         encoding="utf-8")
        for path, seq in ((binary, 1), (jsonl, 2)):
            records, discarded = scan_segment(path, seq_field="seq")
            assert [r["seq"] for r in records] == [seq]
            assert discarded == 0


class TestMixedStream:
    def test_jsonl_then_binary_segments_read_as_one_stream(self, tmp_path):
        # A directory migrated mid-life: a legacy single file, a legacy
        # numbered JSONL segment, then native binary segments.
        (tmp_path / "wal.jsonl").write_text(
            "\n".join(legacy_line({"lsn": i, "type": "t"})
                      for i in (1, 2)) + "\n", encoding="utf-8")
        (tmp_path / "wal-00000001.jsonl").write_text(
            legacy_line({"lsn": 3, "type": "t"}) + "\n", encoding="utf-8")
        (tmp_path / "wal-00000002.seg").write_bytes(
            encode_frame({"lsn": 4, "type": "t"})
            + encode_frame({"lsn": 5, "type": "t"}))
        records, discarded = read_stream(tmp_path, "wal", seq_field="lsn",
                                         legacy="wal.jsonl")
        assert [r["lsn"] for r in records] == [1, 2, 3, 4, 5]
        assert discarded == 0
        assert all("crc" not in r for r in records)

    def test_bad_record_poisons_later_segments(self, tmp_path):
        (tmp_path / "wal-00000001.seg").write_bytes(
            encode_frame({"lsn": 1}) + b"\xa6garbage")
        (tmp_path / "wal-00000002.seg").write_bytes(
            encode_frame({"lsn": 2}) + encode_frame({"lsn": 3}))
        records, discarded = read_stream(tmp_path, "wal", seq_field="lsn")
        assert [r["lsn"] for r in records] == [1]
        assert discarded > 0

    def test_legacy_jsonl_wal_directory_recovers(self, tmp_path):
        # End-to-end compatibility: replay a WAL written entirely in the
        # pre-refactor format through the real recovery path.
        src = tmp_path / "src"
        db = HiPAC(durability="wal", data_dir=src, wal_fsync=False)
        from tests.test_wal_recovery import stock_class
        db.define_class(stock_class())
        with db.transaction() as t:
            db.create("Stock", {"symbol": "IBM", "price": 42.0}, t)
        db.close()
        from repro.recovery.wal import read_wal_records, wal_files
        records, _ = read_wal_records(src)
        legacy = tmp_path / "legacy"
        legacy.mkdir()
        (legacy / "wal.jsonl").write_text(
            "\n".join(legacy_line(r) for r in records) + "\n",
            encoding="utf-8")
        recovered = recover(legacy, durability=None)
        rows = recovered.store.snapshot_state()["Stock"]
        assert [row["symbol"] for row in rows.values()] == ["IBM"]
        # The old layout file participates in file listings too.
        assert wal_files(legacy)[0].name == "wal.jsonl"


class TestSegmentWriter:
    def test_rotation_retention_and_fresh_segment_per_session(self, tmp_path):
        writer = SegmentWriter(tmp_path, "s", seq_field="seq",
                               max_segment_bytes=128, max_segments=3)
        for i in range(40):
            writer.append({"data": {"n": i, "pad": "x" * 16}})
        writer.close()
        assert writer.stats["rotations"] > 0
        assert writer.stats["dropped_segments"] > 0
        assert len(segment_files(tmp_path, "s")) <= 3
        last = writer.last_seq
        # A new session opens a fresh segment and continues the numbering.
        writer2 = SegmentWriter(tmp_path, "s", seq_field="seq")
        seq = writer2.append({"data": {}})
        writer2.close()
        assert seq == last + 1
        records, discarded = read_stream(tmp_path, "s", seq_field="seq")
        assert discarded == 0
        assert records[-1]["seq"] == seq

    def test_reset_truncates_but_seq_keeps_increasing(self, tmp_path):
        writer = SegmentWriter(tmp_path, "s", seq_field="seq")
        for _ in range(3):
            writer.append({"data": {}})
        writer.reset()
        seq = writer.append({"data": {}})
        writer.close()
        assert seq == 4
        records, _ = read_stream(tmp_path, "s", seq_field="seq")
        assert [r["seq"] for r in records] == [4]

    def test_group_commit_batches_concurrent_syncs(self, tmp_path):
        writer = SegmentWriter(tmp_path, "s", seq_field="seq", fsync=True)
        barrier = threading.Barrier(8)

        def commit(n: int) -> None:
            barrier.wait()
            for _ in range(5):
                seq = writer.append({"data": {"t": n}})
                writer.sync(seq)

        workers = [threading.Thread(target=commit, args=(n,))
                   for n in range(8)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        writer.close()
        stats = writer.stats
        assert stats["records"] == 40
        assert stats["syncs"] == 40
        assert stats["group_leads"] + stats["group_follows"] == 40
        assert stats["batched_records"] == 40
        # Group commit earns its keep only if some fsyncs were shared.
        assert stats["group_follows"] > 0
        assert writer.durable_seq == 40
        records, discarded = read_stream(tmp_path, "s", seq_field="seq")
        assert discarded == 0
        assert [r["seq"] for r in records] == list(range(1, 41))

    def test_interval_mode_fsyncs_in_background(self, tmp_path):
        writer = SegmentWriter(tmp_path, "s", seq_field="seq",
                               fsync_interval_ms=10)
        assert not writer.fsync_enabled
        seq = writer.append({"data": {}})
        writer.sync(seq)  # flush only; no durability wait
        deadline = time.monotonic() + 5.0
        while writer.durable_seq < seq and time.monotonic() < deadline:
            time.sleep(0.01)
        assert writer.durable_seq >= seq
        assert writer.stats["fsyncs"] >= 1
        writer.close()

    def test_interval_mode_drains_batch_frames(self, tmp_path):
        writer = SegmentWriter(tmp_path, "s", seq_field="seq",
                               fsync_interval_ms=60_000)
        for i in range(5):
            writer.append({"data": {"n": i}})
        assert writer.stats["bytes"] == 0  # still queued in memory
        writer.flush()
        records, discarded = read_stream(tmp_path, "s", seq_field="seq")
        assert [r["seq"] for r in records] == [1, 2, 3, 4, 5]
        assert discarded == 0
        # The whole queue drained as one batch frame: one header + one
        # JSON array, cheaper than five framed records.
        singles = sum(len(encode_frame({"seq": r["seq"],
                                        "data": r["data"]}))
                      for r in records)
        assert 0 < writer.stats["bytes"] < singles
        writer.close()

    def test_closed_writer_rejects_appends(self, tmp_path):
        writer = SegmentWriter(tmp_path, "s", seq_field="seq")
        writer.close()
        with pytest.raises(ValueError):
            writer.append({"data": {}})
