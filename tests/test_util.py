"""Tests for id generation and canonical value freezing."""

import threading

from repro.util.canonical import canonical_value, freeze
from repro.util.ids import IdGenerator


class TestIdGenerator:
    def test_sequential_ints(self):
        gen = IdGenerator()
        assert [gen.next_int() for _ in range(3)] == [1, 2, 3]

    def test_prefixed_ids(self):
        gen = IdGenerator("t")
        assert gen.next_id() == "t1"
        assert gen.next_id() == "t2"

    def test_independent_generators(self):
        a, b = IdGenerator(), IdGenerator()
        a.next_int()
        assert b.next_int() == 1

    def test_thread_safety_no_duplicates(self):
        gen = IdGenerator()
        results = []
        lock = threading.Lock()

        def worker():
            local = [gen.next_int() for _ in range(200)]
            with lock:
                results.extend(local)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == len(set(results)) == 1600


class TestFreeze:
    def test_scalars_pass_through(self):
        assert freeze(42) == 42
        assert freeze("x") == "x"
        assert freeze(None) is None

    def test_list_becomes_tuple(self):
        assert freeze([1, 2, 3]) == (1, 2, 3)
        assert hash(freeze([1, 2, 3]))

    def test_nested_structures(self):
        frozen = freeze([1, [2, 3], {"a": [4]}])
        assert hash(frozen)
        assert frozen == (1, (2, 3), (("a", (4,)),))

    def test_set_becomes_frozenset(self):
        assert freeze({1, 2}) == frozenset({1, 2})

    def test_dict_order_insensitive(self):
        assert freeze({"a": 1, "b": 2}) == freeze({"b": 2, "a": 1})

    def test_canonical_value_is_stable(self):
        assert canonical_value({"a": 1}) == canonical_value({"a": 1})
