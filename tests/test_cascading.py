"""Tests for cascading rule firings and the nested transaction trees they
build (paper §3.2: "cascading rule firings produce a tree of nested
transactions")."""

import pytest

from repro import (
    Action,
    ClassDef,
    Condition,
    HiPAC,
    Query,
    Rule,
    RuleError,
    attributes,
    on_create,
)
from repro.rules.manager import RuleManagerConfig


@pytest.fixture
def db():
    database = HiPAC(lock_timeout=2.0)
    for name in ("A", "B", "C", "D"):
        database.define_class(ClassDef(name, attributes(("v", "int"))))
    return database


def chain_rule(name, src, dst):
    return Rule(
        name=name,
        event=on_create(src),
        condition=Condition.true(),
        action=Action.call(lambda ctx: ctx.create(dst, {"v": 0})),
    )


class TestCascades:
    def test_chain_depth_three(self, db):
        db.create_rule(chain_rule("a2b", "A", "B"))
        db.create_rule(chain_rule("b2c", "B", "C"))
        db.create_rule(chain_rule("c2d", "C", "D"))
        with db.transaction() as txn:
            db.create("A", {"v": 0}, txn)
            top = txn
        with db.transaction() as r:
            for name in ("B", "C", "D"):
                assert len(db.query(Query(name), r)) == 1
        # top -> cond/act(a2b) -> under act: cond/act(b2c) -> cond/act(c2d)
        assert top.tree_depth() == 4
        assert top.tree_size() == 7

    def test_cascade_effects_all_undone_on_abort(self, db):
        db.create_rule(chain_rule("a2b", "A", "B"))
        db.create_rule(chain_rule("b2c", "B", "C"))
        txn = db.begin()
        db.create("A", {"v": 0}, txn)
        db.abort(txn)
        with db.transaction() as r:
            for name in ("A", "B", "C"):
                assert len(db.query(Query(name), r)) == 0

    def test_infinite_cascade_bounded(self, db):
        """Mutually recursive immediate rules must hit the depth bound, not
        hang or blow the Python stack."""
        config = RuleManagerConfig(max_cascade_depth=10)
        database = HiPAC(lock_timeout=2.0, config=config)
        database.define_class(ClassDef("A", attributes(("v", "int"))))
        database.create_rule(Rule(
            name="loop",
            event=on_create("A"),
            condition=Condition.true(),
            action=Action.call(lambda ctx: ctx.create("A", {"v": 0})),
        ))
        from repro import TransactionAborted
        with pytest.raises((RuleError, TransactionAborted)):
            with database.transaction() as txn:
                database.create("A", {"v": 0}, txn)

    def test_action_error_aborts_action_subtransaction_only_effects(self, db):
        """An action that raises propagates to the triggering operation; the
        action subtransaction's own effects are rolled back."""
        def boom(ctx):
            ctx.create("B", {"v": 1})
            raise ValueError("action failed")

        db.create_rule(Rule(
            name="bad",
            event=on_create("A"),
            condition=Condition.true(),
            action=Action.call(boom),
        ))
        txn = db.begin()
        with pytest.raises(ValueError):
            db.create("A", {"v": 0}, txn)
        db.abort(txn)
        with db.transaction() as r:
            assert len(db.query(Query("B"), r)) == 0
            assert len(db.query(Query("A"), r)) == 0

    def test_deferred_cascade_processed_in_rounds(self, db):
        """A deferred action creating an object that triggers another
        deferred rule must drain before commit completes."""
        db.create_rule(Rule(
            name="a2b",
            event=on_create("A"),
            condition=Condition.true(),
            action=Action.call(lambda ctx: ctx.create("B", {"v": 0})),
            ec_coupling="deferred",
        ))
        db.create_rule(Rule(
            name="b2c",
            event=on_create("B"),
            condition=Condition.true(),
            action=Action.call(lambda ctx: ctx.create("C", {"v": 0})),
            ec_coupling="deferred",
        ))
        with db.transaction() as txn:
            db.create("A", {"v": 0}, txn)
        with db.transaction() as r:
            assert len(db.query(Query("C"), r)) == 1

    def test_separate_cascade_drains(self, db):
        db.create_rule(Rule(
            name="a2b",
            event=on_create("A"),
            condition=Condition.true(),
            action=Action.call(lambda ctx: ctx.create("B", {"v": 0})),
            ec_coupling="separate",
        ))
        db.create_rule(Rule(
            name="b2c",
            event=on_create("B"),
            condition=Condition.true(),
            action=Action.call(lambda ctx: ctx.create("C", {"v": 0})),
            ec_coupling="separate",
        ))
        with db.transaction() as txn:
            db.create("A", {"v": 0}, txn)
        assert db.drain(timeout=10.0)
        with db.transaction() as r:
            assert len(db.query(Query("C"), r)) == 1
        assert db.rule_manager.background_errors == []


class TestMultiRuleEvents:
    def test_all_triggered_rules_fire(self, db):
        counts = []
        for i in range(5):
            db.create_rule(Rule(
                name="r%d" % i,
                event=on_create("A"),
                condition=Condition.true(),
                action=Action.call(lambda ctx, i=i: counts.append(i)),
            ))
        with db.transaction() as txn:
            db.create("A", {"v": 0}, txn)
        assert sorted(counts) == [0, 1, 2, 3, 4]

    def test_no_conflict_resolution_all_fire_as_siblings(self, db):
        """The paper: 'there is no conflict resolution policy that chooses a
        single rule to fire' — every triggered rule gets its own condition
        subtransaction under the trigger."""
        for i in range(3):
            db.create_rule(Rule(
                name="r%d" % i,
                event=on_create("A"),
                condition=Condition.true(),
                action=Action.call(lambda ctx: None),
            ))
        with db.transaction() as txn:
            db.create("A", {"v": 0}, txn)
            top = txn
        firings = db.firing_log().all()
        assert len(firings) == 3
        assert all(f.triggering_txn == top.txn_id for f in firings)
        assert len({f.condition_txn for f in firings}) == 3

    def test_priority_orders_serial_firing(self, db):
        order = []
        for name, priority in (("low", 0), ("high", 5)):
            db.create_rule(Rule(
                name=name,
                event=on_create("A"),
                condition=Condition.true(),
                action=Action.call(lambda ctx, n=name: order.append(n)),
                priority=priority,
            ))
        with db.transaction() as txn:
            db.create("A", {"v": 0}, txn)
        assert order == ["high", "low"]


class TestConcurrentConditions:
    def test_concurrent_sibling_condition_evaluation(self):
        config = RuleManagerConfig(concurrent_conditions=True)
        db = HiPAC(lock_timeout=5.0, config=config)
        db.define_class(ClassDef("A", attributes(("v", "int"))))
        fired = []
        import threading
        lock = threading.Lock()
        for i in range(8):
            db.create_rule(Rule(
                name="r%d" % i,
                event=on_create("A"),
                condition=Condition.true(),
                action=Action.call(
                    lambda ctx, i=i: (lock.acquire(), fired.append(i),
                                      lock.release())),
            ))
        with db.transaction() as txn:
            db.create("A", {"v": 0}, txn)
            top = txn
        assert sorted(fired) == list(range(8))
        # 8 condition + 8 action subtransactions under the trigger.
        assert top.tree_size() == 17
