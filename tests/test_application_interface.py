"""Tests for the application paradigm: channels, registry, and the
four-module interface of Figure 4.1."""

import pytest

from repro import (
    Action,
    ApplicationError,
    ClassDef,
    Condition,
    HiPAC,
    Rule,
    attributes,
    external,
    on_create,
)
from repro.apps.channel import Channel, Request
from repro.apps.registry import ApplicationRegistry
from repro.rules.actions import RequestStep


class TestChannel:
    def test_synchronous_dispatch_returns_reply(self):
        channel = Channel("app")
        channel.register("add", lambda a, b: a + b)
        request = Request("app", "add", {"a": 2, "b": 3})
        assert channel.dispatch(request) == 5
        assert request.completed and request.reply == 5

    def test_unknown_operation_raises(self):
        channel = Channel("app")
        with pytest.raises(ApplicationError):
            channel.dispatch(Request("app", "nope"))

    def test_handler_error_wrapped(self):
        channel = Channel("app")
        channel.register("boom", lambda: 1 / 0)
        request = Request("app", "boom")
        with pytest.raises(ApplicationError):
            channel.dispatch(request)
        assert request.error

    def test_history_recorded(self):
        channel = Channel("app")
        channel.register("op", lambda: None)
        channel.dispatch(Request("app", "op"))
        assert len(channel.history) == 1

    def test_mailbox_queues_until_served(self):
        channel = Channel("app", mailbox=True)
        got = []
        channel.register("op", lambda x: got.append(x))
        channel.dispatch(Request("app", "op", {"x": 1}))
        channel.dispatch(Request("app", "op", {"x": 2}))
        assert got == []
        assert channel.pending() == 2
        assert channel.serve() == 2
        assert got == [1, 2]

    def test_serve_max_requests(self):
        channel = Channel("app", mailbox=True)
        channel.register("op", lambda: None)
        for _ in range(3):
            channel.dispatch(Request("app", "op"))
        assert channel.serve(max_requests=2) == 2
        assert channel.pending() == 1

    def test_operations_listed(self):
        channel = Channel("app")
        channel.register("b", lambda: None)
        channel.register("a", lambda: None)
        assert channel.operations() == ["a", "b"]


class TestRegistry:
    def test_register_and_request(self):
        registry = ApplicationRegistry()
        channel = registry.register("calc")
        channel.register("double", lambda x: 2 * x)
        assert registry.request("calc", "double", {"x": 4}) == 8
        assert registry.stats["requests"] == 1

    def test_unknown_application_raises(self):
        registry = ApplicationRegistry()
        with pytest.raises(ApplicationError):
            registry.request("nope", "op")

    def test_register_idempotent(self):
        registry = ApplicationRegistry()
        assert registry.register("a") is registry.register("a")

    def test_unregister(self):
        registry = ApplicationRegistry()
        registry.register("a")
        registry.unregister("a")
        with pytest.raises(ApplicationError):
            registry.channel("a")

    def test_total_requests(self):
        registry = ApplicationRegistry()
        registry.register("a").register("op", lambda: None)
        registry.register("b").register("op", lambda: None)
        registry.request("a", "op")
        registry.request("a", "op")
        registry.request("b", "op")
        assert registry.total_requests() == 3
        assert registry.total_requests("a") == 2


class TestFourModuleInterface:
    @pytest.fixture
    def db(self):
        database = HiPAC(lock_timeout=2.0)
        database.define_class(ClassDef("Doc", attributes("title")))
        return database

    def test_data_module(self, db):
        app = db.application("editor")
        with app.transactions.run() as txn:
            oid = app.data.create("Doc", {"title": "t"}, txn)
            app.data.update(oid, {"title": "t2"}, txn)
            assert app.data.read(oid, txn)["title"] == "t2"
        with app.transactions.run() as txn:
            from repro import Query
            assert len(app.data.query(Query("Doc"), txn)) == 1

    def test_transaction_module_abort_on_exception(self, db):
        app = db.application("editor")
        with pytest.raises(ValueError):
            with app.transactions.run() as txn:
                app.data.create("Doc", {"title": "t"}, txn)
                raise ValueError("boom")
        with app.transactions.run() as txn:
            from repro import Query
            assert len(app.data.query(Query("Doc"), txn)) == 0

    def test_transaction_module_nesting(self, db):
        app = db.application("editor")
        with app.transactions.run() as top:
            with app.transactions.run(parent=top) as child:
                assert child.parent is top

    def test_event_module_define_and_signal_fires_rule(self, db):
        app = db.application("editor")
        app.events.define("saved", "title")
        seen = []
        db.create_rule(Rule(
            name="on-save",
            event=external("saved", "title"),
            condition=Condition.true(),
            action=Action.call(lambda ctx: seen.append(ctx.bindings["title"])),
        ))
        app.events.signal("saved", {"title": "report"})
        assert seen == ["report"]

    def test_operations_module_serves_rule_requests(self, db):
        app = db.application("printer")
        printed = []
        app.operations.register("print_doc", lambda title: printed.append(title))
        db.create_rule(Rule(
            name="auto-print",
            event=on_create("Doc"),
            condition=Condition.true(),
            action=Action.of(RequestStep(
                "printer", "print_doc",
                lambda ctx: {"title": ctx.bindings["new_title"]})),
        ))
        with db.transaction() as txn:
            db.create("Doc", {"title": "memo"}, txn)
        assert printed == ["memo"]
        assert len(app.operations.history()) == 1

    def test_mailbox_application(self, db):
        app = db.application("slowpoke", mailbox=True)
        handled = []
        app.operations.register("notify", lambda: handled.append(1))
        db.create_rule(Rule(
            name="notify-rule",
            event=on_create("Doc"),
            condition=Condition.true(),
            action=Action.of(RequestStep("slowpoke", "notify")),
        ))
        with db.transaction() as txn:
            db.create("Doc", {"title": "x"}, txn)
        assert handled == []
        assert app.operations.pending() == 1
        app.operations.serve()
        assert handled == [1]
