"""Tests for the multigranularity, Moss-nested lock manager."""

import threading

import pytest

from repro.errors import DeadlockError, LockTimeout, TransactionStateError
from repro.txn.locks import (
    LockManager,
    LockMode,
    LockResource,
    compatible,
    supremum,
)
from repro.txn.transaction import Transaction


def txn(txn_id="t1", parent=None):
    return Transaction(txn_id, parent)


RES = LockResource.for_class("Stock")


class TestCompatibilityMatrix:
    def test_is_compatible_with_all_but_x(self):
        for mode in (LockMode.IS, LockMode.IX, LockMode.S, LockMode.SIX):
            assert compatible(LockMode.IS, mode)
        assert not compatible(LockMode.IS, LockMode.X)

    def test_ix_conflicts(self):
        assert compatible(LockMode.IX, LockMode.IX)
        assert not compatible(LockMode.IX, LockMode.S)
        assert not compatible(LockMode.IX, LockMode.SIX)
        assert not compatible(LockMode.IX, LockMode.X)

    def test_s_conflicts(self):
        assert compatible(LockMode.S, LockMode.S)
        assert not compatible(LockMode.S, LockMode.IX)
        assert not compatible(LockMode.S, LockMode.X)

    def test_x_conflicts_with_everything(self):
        for mode in LockMode.ALL:
            assert not compatible(LockMode.X, mode)

    def test_matrix_symmetry(self):
        for a in LockMode.ALL:
            for b in LockMode.ALL:
                assert compatible(a, b) == compatible(b, a)


class TestSupremum:
    def test_identity(self):
        for mode in LockMode.ALL:
            assert supremum(mode, mode) == mode

    def test_ix_s_is_six(self):
        assert supremum(LockMode.IX, LockMode.S) == LockMode.SIX
        assert supremum(LockMode.S, LockMode.IX) == LockMode.SIX

    def test_x_dominates(self):
        for mode in LockMode.ALL:
            assert supremum(mode, LockMode.X) == LockMode.X

    def test_is_is_bottom(self):
        for mode in LockMode.ALL:
            assert supremum(LockMode.IS, mode) == mode

    def test_supremum_at_least_as_strong(self):
        # sup(a, b) must conflict with everything a or b conflicts with.
        for a in LockMode.ALL:
            for b in LockMode.ALL:
                sup = supremum(a, b)
                for other in LockMode.ALL:
                    if not compatible(a, other) or not compatible(b, other):
                        assert not compatible(sup, other)


class TestBasicAcquire:
    def test_acquire_and_hold(self):
        locks = LockManager()
        t = txn()
        locks.acquire(t, RES, LockMode.S)
        assert locks.mode_held(t, RES) == LockMode.S

    def test_shared_coexist(self):
        locks = LockManager()
        a, b = txn("a"), txn("b")
        locks.acquire(a, RES, LockMode.S)
        locks.acquire(b, RES, LockMode.S)
        assert set(locks.holders(RES)) == {"a", "b"}

    def test_upgrade_s_to_x(self):
        locks = LockManager()
        t = txn()
        locks.acquire(t, RES, LockMode.S)
        locks.acquire(t, RES, LockMode.X)
        assert locks.mode_held(t, RES) == LockMode.X

    def test_upgrade_ix_s_gives_six(self):
        locks = LockManager()
        t = txn()
        locks.acquire(t, RES, LockMode.IX)
        locks.acquire(t, RES, LockMode.S)
        assert locks.mode_held(t, RES) == LockMode.SIX

    def test_try_acquire_conflict_returns_false(self):
        locks = LockManager()
        a, b = txn("a"), txn("b")
        locks.acquire(a, RES, LockMode.X)
        assert not locks.try_acquire(b, RES, LockMode.S)
        assert locks.try_acquire(b, LockResource.for_class("Other"), LockMode.S)

    def test_finished_transaction_cannot_lock(self):
        locks = LockManager()
        t = txn()
        t.state = "committed"
        with pytest.raises(TransactionStateError):
            locks.acquire(t, RES, LockMode.S)

    def test_release_all_clears(self):
        locks = LockManager()
        t = txn()
        locks.acquire(t, RES, LockMode.X)
        locks.release_all(t)
        assert locks.mode_held(t, RES) is None
        assert locks.resource_count() == 0


class TestMossRules:
    def test_child_acquires_parent_held_lock(self):
        locks = LockManager()
        parent = txn("p")
        child = txn("c", parent)
        locks.acquire(parent, RES, LockMode.X)
        # Parent suspended; child may acquire despite the conflict.
        locks.acquire(child, RES, LockMode.X)
        assert locks.mode_held(child, RES) == LockMode.X

    def test_grandchild_acquires_ancestor_lock(self):
        locks = LockManager()
        p = txn("p")
        c = txn("c", p)
        g = txn("g", c)
        locks.acquire(p, RES, LockMode.X)
        locks.acquire(g, RES, LockMode.S)
        assert locks.mode_held(g, RES) == LockMode.S

    def test_sibling_conflict_blocks(self):
        locks = LockManager(default_timeout=0.1)
        p = txn("p")
        a = txn("a", p)
        b = txn("b", p)
        locks.acquire(a, RES, LockMode.X)
        with pytest.raises(LockTimeout):
            locks.acquire(b, RES, LockMode.X, timeout=0.1)

    def test_unrelated_conflict_blocks(self):
        locks = LockManager()
        a, b = txn("a"), txn("b")
        locks.acquire(a, RES, LockMode.X)
        with pytest.raises(LockTimeout):
            locks.acquire(b, RES, LockMode.S, timeout=0.1)

    def test_inherit_to_parent(self):
        locks = LockManager()
        p = txn("p")
        c = txn("c", p)
        locks.acquire(c, RES, LockMode.X)
        locks.inherit_to_parent(c)
        assert locks.mode_held(p, RES) == LockMode.X
        assert locks.mode_held(c, RES) is None
        assert c.held_locks == {}

    def test_inherit_merges_modes(self):
        locks = LockManager()
        p = txn("p")
        c = txn("c", p)
        locks.acquire(p, RES, LockMode.IX)
        locks.acquire(c, RES, LockMode.S)
        locks.inherit_to_parent(c)
        assert locks.mode_held(p, RES) == LockMode.SIX

    def test_inherit_without_parent_rejected(self):
        locks = LockManager()
        t = txn()
        with pytest.raises(TransactionStateError):
            locks.inherit_to_parent(t)

    def test_inherited_lock_blocks_others(self):
        locks = LockManager()
        p = txn("p")
        c = txn("c", p)
        other = txn("o")
        locks.acquire(c, RES, LockMode.X)
        locks.inherit_to_parent(c)
        with pytest.raises(LockTimeout):
            locks.acquire(other, RES, LockMode.S, timeout=0.1)


class TestBlockingAndRelease:
    def test_waiter_proceeds_after_release(self):
        locks = LockManager()
        a, b = txn("a"), txn("b")
        locks.acquire(a, RES, LockMode.X)
        acquired = threading.Event()

        def waiter():
            locks.acquire(b, RES, LockMode.S, timeout=5.0)
            acquired.set()

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        assert not acquired.wait(0.1)
        locks.release_all(a)
        assert acquired.wait(2.0)
        thread.join(timeout=2.0)

    def test_aborted_flag_wakes_waiter(self):
        locks = LockManager()
        a, b = txn("a"), txn("b")
        locks.acquire(a, RES, LockMode.X)
        failed = []

        def waiter():
            try:
                locks.acquire(b, RES, LockMode.S, timeout=5.0)
            except DeadlockError as exc:
                failed.append(exc)

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        import time
        time.sleep(0.1)
        b.aborted_flag = True
        locks.wake_aborted(b)
        thread.join(timeout=2.0)
        assert failed


class TestDeadlockDetection:
    def test_two_party_cycle_detected(self):
        locks = LockManager()
        res2 = LockResource.for_class("Bond")
        a, b = txn("a"), txn("b")
        locks.acquire(a, RES, LockMode.X)
        locks.acquire(b, res2, LockMode.X)
        blocked = threading.Event()

        def a_waits():
            blocked.set()
            try:
                locks.acquire(a, res2, LockMode.X, timeout=5.0)
            except DeadlockError:
                locks.release_all(a)

        thread = threading.Thread(target=a_waits, daemon=True)
        thread.start()
        blocked.wait(1.0)
        import time
        time.sleep(0.1)
        # b closing the cycle must raise immediately, not time out.
        start = time.monotonic()
        with pytest.raises(DeadlockError):
            locks.acquire(b, RES, LockMode.X, timeout=5.0)
        assert time.monotonic() - start < 1.0
        locks.release_all(b)
        thread.join(timeout=2.0)
        assert locks.stats["deadlocks"] >= 1

    def test_finished_transaction_cannot_try_acquire(self):
        # Regression: try_acquire used to skip the is_finished() guard that
        # acquire has, letting a committed/aborted transaction grab locks
        # after its release_all had already run — leaking them forever.
        locks = LockManager()
        for state in ("committed", "aborted"):
            t = txn("t-%s" % state)
            t.state = state
            with pytest.raises(TransactionStateError):
                locks.try_acquire(t, RES, LockMode.S)
        assert locks.resource_count() == 0

    def test_post_deadline_wakeup_rechecks_conflicts(self):
        # Regression: acquire classified a post-deadline wake-up as a
        # timeout even when the conflicting holder had released in the
        # meantime.  Simulate the race: the wait "times out" (returns
        # False) but the holder releases during that same wait.
        locks = LockManager()
        a, b = txn("a"), txn("b")
        locks.acquire(a, RES, LockMode.X)
        original_wait = locks._cond.wait

        def wait_and_lose_race(timeout=None):
            # Holder releases while b is blocked, then the wait returns
            # False as if the deadline had already passed (the condition
            # uses an RLock, so re-entering release_all here is safe).
            locks.release_all(a)
            return False

        locks._cond.wait = wait_and_lose_race
        try:
            locks.acquire(b, RES, LockMode.S, timeout=5.0)
        finally:
            locks._cond.wait = original_wait
        assert locks.mode_held(b, RES) == LockMode.S
        assert locks.stats["timeouts"] == 0

    def test_wait_on_descendant_of_waiting_ancestor(self):
        # X waits on a lock held by parent P while P's child C waits on X:
        # the sphere rule must detect the cycle when C tries to wait.
        locks = LockManager()
        res2 = LockResource.for_class("Bond")
        p = txn("p")
        c = txn("c", p)
        x = txn("x")
        locks.acquire(p, RES, LockMode.X)     # P holds RES
        locks.acquire(x, res2, LockMode.X)    # X holds res2
        blocked = threading.Event()

        def x_waits():
            blocked.set()
            try:
                locks.acquire(x, RES, LockMode.S, timeout=5.0)
            except DeadlockError:
                pass

        thread = threading.Thread(target=x_waits, daemon=True)
        thread.start()
        blocked.wait(1.0)
        import time
        time.sleep(0.1)
        with pytest.raises(DeadlockError):
            locks.acquire(c, res2, LockMode.S, timeout=5.0)
        locks.release_all(p)
        thread.join(timeout=2.0)
