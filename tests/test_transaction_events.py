"""Tests for rules triggered by transaction-control events (begin, commit,
abort) — the paper's third class of database operations (§2.1)."""

import pytest

from repro import (
    Action,
    ClassDef,
    Condition,
    HiPAC,
    Query,
    Rule,
    attributes,
    on_abort,
    on_commit,
)
from repro.events.spec import DatabaseEventSpec


@pytest.fixture
def db():
    database = HiPAC(lock_timeout=2.0)
    database.define_class(ClassDef("Doc", attributes("title")))
    database.define_class(ClassDef("AuditLog", attributes("note")))
    return database


class TestCommitEventRules:
    def test_commit_rule_fires_inside_committing_transaction(self, db):
        """An immediate rule on the commit event runs as a subtransaction of
        the committing transaction; its effects commit with it."""
        db.create_rule(Rule(
            name="audit-commit",
            event=on_commit(),
            condition=Condition.true(),
            action=Action.call(lambda ctx: ctx.create(
                "AuditLog", {"note": "committed %s"
                             % ctx.txn.top_level().txn_id})),
        ))
        with db.transaction() as txn:
            db.create("Doc", {"title": "t"}, txn)
            top_id = txn.txn_id
        with db.transaction() as r:
            notes = db.query(Query("AuditLog"), r).values("note")
        assert any(top_id in note for note in notes)

    def test_commit_rule_separate_coupling(self, db):
        ran = []
        db.create_rule(Rule(
            name="post-commit",
            event=on_commit(),
            condition=Condition.true(),
            action=Action.call(lambda ctx: ran.append(1)),
            ec_coupling="separate",
        ))
        with db.transaction() as txn:
            db.create("Doc", {"title": "t"}, txn)
        db.drain()
        assert ran

    def test_commit_rules_do_not_recurse_forever(self, db):
        """The firing subtransactions commit too; their commits must not
        re-trigger commit rules endlessly (guarded by cascade depth — here
        we just check the system terminates and fires a bounded number of
        times)."""
        count = []
        db.create_rule(Rule(
            name="on-commit",
            event=on_commit(),
            condition=Condition(guard=lambda b, r: len(count) < 3),
            action=Action.call(lambda ctx: count.append(1)),
        ))
        with db.transaction() as txn:
            db.create("Doc", {"title": "t"}, txn)
        assert len(count) >= 1  # fired, and terminated


class TestAbortEventRules:
    def test_abort_rule_runs_detached(self, db):
        """Rules on abort events cannot run inside the aborted transaction;
        they fire in a fresh top-level transaction whose effects survive."""
        db.create_rule(Rule(
            name="audit-abort",
            event=on_abort(),
            condition=Condition.true(),
            action=Action.call(lambda ctx: ctx.create(
                "AuditLog", {"note": "aborted"})),
        ))
        txn = db.begin()
        db.create("Doc", {"title": "doomed"}, txn)
        db.abort(txn)
        with db.transaction() as r:
            docs = db.query(Query("Doc"), r)
            logs = db.query(Query("AuditLog"), r)
        assert len(docs) == 0
        assert len(logs) >= 1

    def test_begin_event_rule(self, db):
        seen = []
        db.create_rule(Rule(
            name="on-begin",
            event=DatabaseEventSpec("begin"),
            condition=Condition.true(),
            action=Action.call(
                lambda ctx: seen.append(ctx.bindings.get("txn_id"))),
            ec_coupling="deferred",
        ))
        with db.transaction() as txn:
            started = txn.txn_id
        assert started in seen
