"""Tests for the serving-and-diagnosis layer: the embedded admin HTTP
endpoint, the rule-cascade profiler, the anomaly watchdogs, and the
``repro.tools.top`` dashboard.

The headline scenario is the acceptance criterion: a cyclic rule set
(A triggers B triggers A) must trip the cascade-depth watchdog, abort the
runaway cascade with a typed :class:`CascadeLimitExceeded`, and leave the
alert visible in both the watchdog's alert log and the ``/health``
endpoint — while ``/metrics`` stays valid Prometheus text under
concurrent scrapes.
"""

from __future__ import annotations

import json
import re
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import (
    Action,
    CascadeLimitExceeded,
    ClassDef,
    Condition,
    HiPAC,
    Rule,
    attributes,
    on_create,
)
from repro.obs.export import prometheus_text
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import RuleProfiler, percentile_of
from repro.obs.spans import SpanRecorder
from repro.obs.watchdog import (
    CASCADE_DEPTH,
    CRITICAL,
    DEFERRED_QUEUE,
    LOCK_WAIT,
    RULE_STORM,
    SLO_BURN,
    WARNING,
    Watchdog,
    WatchdogConfig,
)
from repro.rules.coupling import DEFERRED, IMMEDIATE
from repro.rules.firing import FiringLog, RuleFiring
from repro.rules.manager import RuleManagerConfig
from repro.storage.framing import scan_frames
from repro.tools import top as top_tool


def _db(**kwargs) -> HiPAC:
    kwargs.setdefault("lock_timeout", 2.0)
    db = HiPAC(**kwargs)
    db.define_class(ClassDef("A", attributes(("v", "int"))))
    db.define_class(ClassDef("B", attributes(("v", "int"))))
    return db


def _get(url: str):
    """GET ``url``; returns (status, headers, body-bytes) without raising
    on 4xx/5xx."""
    try:
        with urllib.request.urlopen(url, timeout=5.0) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as err:
        return err.code, dict(err.headers), err.read()


# =============================================================== admin server


class TestAdminServer:
    def test_metrics_endpoint_serves_prometheus_text(self):
        db = _db()
        try:
            server = db.serve_admin()
            status, headers, body = _get(server.url + "/metrics")
            assert status == 200
            assert headers["Content-Type"].startswith("text/plain")
            text = body.decode("utf-8")
            assert "# TYPE" in text and "# HELP" in text
            assert "hipac_" in text
            # Every non-comment line is `name{labels} value`.
            for line in text.strip().splitlines():
                if line.startswith("#"):
                    continue
                assert re.match(r'^[A-Za-z_:][\w:]*(\{.*\})? \S+$', line), line
        finally:
            db.close()

    def test_health_and_stats_json(self):
        db = _db()
        try:
            server = db.serve_admin()
            status, _, body = _get(server.url + "/health")
            assert status == 200
            health = json.loads(body)
            assert health["status"] == "ok"
            assert set(health["alerts"]) == set(
                (RULE_STORM, CASCADE_DEPTH, DEFERRED_QUEUE, LOCK_WAIT,
                 SLO_BURN))
            status, _, body = _get(server.url + "/stats")
            assert status == 200
            payload = json.loads(body)
            assert payload["time"] > 0 and payload["uptime"] >= 0
            assert "rules" in payload["stats"]
            assert "watchdog" in payload["stats"]
            assert payload["derived"]["live_transactions"] == 0
        finally:
            db.close()

    def test_profile_endpoint_json_and_text(self):
        db = _db()
        try:
            db.create_rule(Rule(
                name="R", event=on_create("A"), condition=Condition.true(),
                action=Action.call(lambda ctx: None)))
            with db.transaction() as txn:
                db.create("A", {"v": 0}, txn)
            server = db.serve_admin()
            status, _, body = _get(server.url + "/profile?top=5")
            assert status == 200
            profile = json.loads(body)
            assert profile["rules"]["R"]["firings"] == 1
            status, _, body = _get(server.url + "/profile?format=text")
            assert status == 200
            assert b"rule profile" in body
        finally:
            db.close()

    def test_trace_endpoint_409_without_trace_mode(self):
        db = _db(observability=True)
        try:
            server = db.serve_admin()
            status, _, body = _get(server.url + "/trace")
            assert status == 409
            assert b"trace" in body
        finally:
            db.close()

    def test_trace_endpoint_downloads_chrome_trace(self):
        db = _db(observability="trace")
        try:
            db.create_rule(Rule(
                name="R", event=on_create("A"), condition=Condition.true(),
                action=Action.call(lambda ctx: None)))
            with db.transaction() as txn:
                db.create("A", {"v": 0}, txn)
            server = db.serve_admin()
            status, headers, body = _get(server.url + "/trace")
            assert status == 200
            assert "attachment" in headers.get("Content-Disposition", "")
            document = json.loads(body)
            assert document["traceEvents"]
        finally:
            db.close()

    def test_unknown_path_404_with_index(self):
        db = _db()
        try:
            server = db.serve_admin()
            status, _, body = _get(server.url + "/nope")
            assert status == 404
            assert b"/metrics" in body  # the index helps the lost human
            status, _, body = _get(server.url + "/")
            assert status == 200 and b"/health" in body
        finally:
            db.close()

    def test_non_integer_param_is_a_client_error(self):
        db = _db()
        try:
            server = db.serve_admin()
            status, _, body = _get(server.url + "/profile?top=ten")
            assert status == 400
            assert b"top" in body and b"integer" in body
            # Negative counts clamp to zero rather than erroring.
            status, _, body = _get(server.url + "/profile?top=-5")
            assert status == 200
            assert json.loads(body)["rules"] == {}
        finally:
            db.close()

    def test_flight_endpoint_409_without_recorder(self):
        db = _db()
        try:
            server = db.serve_admin()
            status, _, body = _get(server.url + "/flight")
            assert status == 409
            assert b"flight_recorder=True" in body
        finally:
            db.close()

    def test_flight_endpoint_serves_stats_and_segment(self, tmp_path):
        db = _db(durability="wal", data_dir=tmp_path, flight_recorder=True)
        try:
            with db.transaction() as txn:
                db.create("A", {"v": 1}, txn)
            server = db.serve_admin()
            status, _, body = _get(server.url + "/flight?last=2")
            assert status == 200
            payload = json.loads(body)
            assert payload["stats"]["records"] > 0
            assert len(payload["recent"]) == 2
            assert payload["recent"][-1]["seq"] \
                == payload["stats"]["last_seq"]
            status, headers, body = _get(server.url + "/flight?download=1")
            assert status == 200
            assert "attachment" in headers["Content-Disposition"]
            assert headers["Content-Type"] == "application/octet-stream"
            # The live segment is binary frames; boundary records flush
            # the buffered prefix, so the download holds at least the
            # commit intents (a coalesced tail may still be buffered).
            records, discarded = scan_frames(body, "seq", 0)
            assert discarded == 0
            assert 0 < len(records) <= payload["stats"]["records"]
            assert records[-1]["seq"] <= payload["stats"]["last_seq"]
            status, _, body = _get(server.url + "/flight?last=zero")
            assert status == 400
        finally:
            db.close()

    def test_serve_admin_is_idempotent_and_close_stops_it(self):
        db = _db()
        server = db.serve_admin()
        assert db.serve_admin() is server
        assert server.running
        url = server.url
        assert server.request_count == 0
        _get(url + "/health")
        assert server.request_count == 1
        db.close()
        assert not server.running
        with pytest.raises((urllib.error.URLError, OSError)):
            urllib.request.urlopen(url + "/health", timeout=0.5)
        # close is idempotent
        server.close()

    def test_endpoints_valid_under_concurrent_load(self):
        """Acceptance: /metrics and /health stay valid while worker threads
        mutate the database and scraper threads hammer the endpoint."""
        db = _db()
        db.create_rule(Rule(
            name="busy", event=on_create("A"), condition=Condition.true(),
            action=Action.call(lambda ctx: None)))
        server = db.serve_admin()
        errors = []
        stop = threading.Event()

        def workload():
            while not stop.is_set():
                try:
                    with db.transaction() as txn:
                        db.create("A", {"v": 1}, txn)
                except Exception as exc:  # pragma: no cover
                    errors.append(("workload", exc))

        def scraper(path, validate):
            for _ in range(15):
                try:
                    status, _, body = _get(server.url + path)
                    assert status == 200
                    validate(body)
                except Exception as exc:
                    errors.append((path, exc))

        def valid_metrics(body):
            text = body.decode("utf-8")
            assert "# TYPE hipac_rule_firings_total counter" in text

        def valid_health(body):
            assert json.loads(body)["status"] in ("ok", "degraded")

        threads = [threading.Thread(target=workload) for _ in range(2)]
        threads += [threading.Thread(target=scraper,
                                     args=("/metrics", valid_metrics))
                    for _ in range(3)]
        threads += [threading.Thread(target=scraper,
                                     args=("/health", valid_health))
                    for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads[2:]:
            thread.join()
        stop.set()
        for thread in threads[:2]:
            thread.join()
        db.close()
        assert not errors, errors
        assert server.error_count == 0
        assert server.request_count >= 90

    def test_stats_and_metrics_scrapes_under_wal_commit_load(self, tmp_path):
        """The storage stats section stays scrapable while 8+ threads
        commit under ``durability="wal"``: /stats parses with live WAL
        counters and /metrics stays valid Prometheus text throughout."""
        db = _db(durability="wal", data_dir=tmp_path)
        server = db.serve_admin()
        errors = []
        stop = threading.Event()

        def committer(worker):
            while not stop.is_set():
                try:
                    with db.transaction() as txn:
                        db.create("A", {"v": worker}, txn)
                except Exception as exc:  # pragma: no cover
                    errors.append(("committer", exc))

        def scraper(path, validate):
            for _ in range(15):
                try:
                    status, _, body = _get(server.url + path)
                    assert status == 200
                    validate(body)
                except Exception as exc:
                    errors.append((path, exc))

        def valid_stats(body):
            payload = json.loads(body)
            storage = payload["stats"]["storage"]
            assert storage["wal_records"] >= 0
            assert storage["wal_fsyncs"] >= 0
            assert "provenance" in payload["stats"]

        def valid_metrics(body):
            samples = _parse_prometheus(body.decode("utf-8"))
            assert any(name.startswith("hipac_") and "wal" in name
                       for name, _ in samples)

        committers = [threading.Thread(target=committer, args=(i,))
                      for i in range(8)]
        scrapers = [threading.Thread(target=scraper,
                                     args=("/stats", valid_stats))
                    for _ in range(2)]
        scrapers += [threading.Thread(target=scraper,
                                      args=("/metrics", valid_metrics))
                     for _ in range(2)]
        for thread in committers + scrapers:
            thread.start()
        for thread in scrapers:
            thread.join()
        stop.set()
        for thread in committers:
            thread.join()
        committed = db.stats()["transactions"]["top_level_committed"]
        db.close()
        assert not errors, errors
        assert committed > 0
        assert server.error_count == 0


# ================================================== cascade watchdog (accept)


class TestCyclicCascadeWatchdog:
    def test_cyclic_rules_trip_detector_and_abort(self):
        """A triggers B triggers A: the cascade must be cut at the
        configured depth with a typed error, a critical alert in the log,
        and /health reporting the instance as failing."""
        config = RuleManagerConfig(max_cascade_depth=8)
        db = _db(config=config)
        db.create_rule(Rule(
            name="a2b", event=on_create("A"), condition=Condition.true(),
            action=Action.call(lambda ctx: ctx.create("B", {"v": 0}))))
        db.create_rule(Rule(
            name="b2a", event=on_create("B"), condition=Condition.true(),
            action=Action.call(lambda ctx: ctx.create("A", {"v": 0}))))
        server = db.serve_admin()
        try:
            with pytest.raises(CascadeLimitExceeded) as excinfo:
                with db.transaction() as txn:
                    db.create("A", {"v": 0}, txn)
            assert excinfo.value.depth == 8
            assert "max depth 8" in str(excinfo.value)

            # Alert log: one critical cascade_depth alert.
            alerts = db.watchdog.alerts(CASCADE_DEPTH)
            assert len(alerts) == 1
            assert alerts[0].severity == CRITICAL
            assert "depth 8" in alerts[0].message

            # Stats record the cut and the high-water depth.
            stats = db.stats()
            assert stats["rules"]["cascades_cut"] == 1
            assert stats["rules"]["max_cascade_depth_seen"] == 8
            assert stats["watchdog"]["alerts_cascade_depth"] == 1

            # /health: failing, with the alert in the recent list, HTTP 503.
            status, _, body = _get(server.url + "/health")
            assert status == 503
            health = json.loads(body)
            assert health["status"] == "failing"
            assert health["alerts"][CASCADE_DEPTH] == 1
            assert any(a["kind"] == CASCADE_DEPTH for a in health["recent"])
        finally:
            db.close()

    def test_caught_cascade_keeps_database_usable(self):
        """The typed error is catchable; the rest of the database still
        works after the runaway transaction aborts."""
        config = RuleManagerConfig(max_cascade_depth=4)
        db = _db(config=config)
        db.create_rule(Rule(
            name="loop", event=on_create("A"), condition=Condition.true(),
            action=Action.call(lambda ctx: ctx.create("A", {"v": 0}))))
        with pytest.raises(CascadeLimitExceeded):
            with db.transaction() as txn:
                db.create("A", {"v": 0}, txn)
        db.disable_rule("loop")
        with db.transaction() as txn:
            db.create("A", {"v": 7}, txn)
        db.close()


# ============================================================= watchdog unit


class TestWatchdogDetectors:
    def test_rule_storm_trips_over_threshold(self):
        wd = Watchdog(WatchdogConfig(rule_storm_rate=5.0,
                                     rule_storm_window=10.0))
        alert = None
        for _ in range(60):
            alert = wd.note_firing() or alert
        assert alert is not None and alert.kind == RULE_STORM
        assert alert.severity == WARNING
        assert alert.value > 5.0

    def test_rule_storm_quiet_below_threshold(self):
        wd = Watchdog(WatchdogConfig(rule_storm_rate=1000.0,
                                     rule_storm_window=1.0))
        for _ in range(10):
            assert wd.note_firing() is None
        assert wd.alerts() == []

    def test_storm_detector_disabled_by_default_config(self):
        wd = Watchdog()  # rule_storm_rate=0.0 -> off
        for _ in range(1000):
            assert wd.note_firing() is None

    def test_realert_interval_suppresses_duplicates(self):
        wd = Watchdog(WatchdogConfig(realert_interval=60.0))
        assert wd.note_cascade_limit(5, "sig") is not None
        assert wd.note_cascade_limit(5, "sig") is None
        assert len(wd.alerts(CASCADE_DEPTH)) == 1

    def test_deferred_queue_detector(self):
        wd = Watchdog(WatchdogConfig(deferred_queue_limit=10))
        assert wd.note_deferred_depth(10) is None
        alert = wd.note_deferred_depth(11)
        assert alert is not None and alert.kind == DEFERRED_QUEUE

    def test_lock_wait_p95_checked_on_pull_path(self):
        wd = Watchdog(WatchdogConfig(lock_wait_p95_limit=0.010,
                                     lock_wait_min_samples=5))
        for _ in range(10):
            wd.note_lock_wait(0.050)
        assert wd.alerts() == []  # feeds alone never alert
        raised = wd.check()
        assert len(raised) == 1 and raised[0].kind == LOCK_WAIT
        assert raised[0].value == pytest.approx(0.050)

    def test_lock_wait_respects_min_samples(self):
        wd = Watchdog(WatchdogConfig(lock_wait_p95_limit=0.001,
                                     lock_wait_min_samples=20))
        for _ in range(5):
            wd.note_lock_wait(1.0)
        assert wd.check() == []

    def test_alert_ring_bounded_and_callbacks_fire(self):
        wd = Watchdog(WatchdogConfig(alert_capacity=3, realert_interval=0.0))
        received = []
        wd.add_callback(received.append)
        for index in range(5):
            wd.note_cascade_limit(index, "sig")
        assert len(wd) == 3
        assert wd.dropped == 2
        assert wd.stats["alerts_total"] == 5
        assert len(received) == 5
        assert wd.health()["alerts_dropped"] == 2
        text = wd.format()
        assert "cascade_depth" in text
        wd.clear()
        assert len(wd) == 0 and wd.dropped == 0
        assert wd.format() == "watchdog: no alerts"

    def test_disabled_watchdog_records_nothing(self):
        wd = Watchdog(WatchdogConfig(rule_storm_rate=0.001,
                                     deferred_queue_limit=1), enabled=False)
        wd.note_firing()
        wd.note_cascade_limit(99, "sig")
        wd.note_deferred_depth(100)
        wd.note_lock_wait(10.0)
        assert wd.check() == []
        assert wd.alerts() == []
        assert wd.health()["status"] == "ok"


class TestWatchdogWiring:
    def test_storm_detector_wired_through_facade(self):
        db = _db(watchdog=WatchdogConfig(rule_storm_rate=2.0,
                                         rule_storm_window=60.0))
        db.create_rule(Rule(
            name="chatty", event=on_create("A"), condition=Condition.true(),
            action=Action.call(lambda ctx: None)))
        for _ in range(150):
            with db.transaction() as txn:
                db.create("A", {"v": 0}, txn)
        assert db.watchdog.alerts(RULE_STORM)
        assert db.health()["status"] == "degraded"
        db.close()

    def test_deferred_queue_detector_wired_through_facade(self):
        db = _db(watchdog=WatchdogConfig(deferred_queue_limit=3))
        db.create_rule(Rule(
            name="later", event=on_create("A"), condition=Condition.true(),
            action=Action.call(lambda ctx: None),
            ec_coupling=DEFERRED))
        with db.transaction() as txn:
            for index in range(6):
                db.create("A", {"v": index}, txn)
        alerts = db.watchdog.alerts(DEFERRED_QUEUE)
        assert alerts and alerts[0].value >= 6
        db.close()

    def test_lock_waits_feed_the_watchdog(self):
        from repro.txn.locks import LockManager, LockMode, LockResource
        from repro.txn.transaction import Transaction

        wd = Watchdog(WatchdogConfig(lock_wait_p95_limit=1e-6,
                                     lock_wait_min_samples=1))
        locks = LockManager(default_timeout=2.0, watchdog=wd)
        resource = LockResource.for_class("C")
        holder, waiter = Transaction("t1"), Transaction("t2")
        locks.acquire(holder, resource, LockMode.X)

        def release_soon():
            time.sleep(0.05)
            locks.release_all(holder)

        thread = threading.Thread(target=release_soon)
        thread.start()
        locks.acquire(waiter, resource, LockMode.X)
        thread.join()
        raised = wd.check()
        assert raised and raised[0].kind == LOCK_WAIT
        assert raised[0].value >= 0.01

    def test_health_degrades_on_background_rule_errors(self):
        from repro.rules.coupling import SEPARATE

        db = _db()
        db.create_rule(Rule(
            name="doomed", event=on_create("A"), condition=Condition.true(),
            action=Action.call(lambda ctx: 1 / 0),
            ec_coupling=SEPARATE))
        with db.transaction() as txn:
            db.create("A", {"v": 0}, txn)
        assert db.drain(5.0)
        health = db.health()
        assert health["background_rule_errors"] >= 1
        assert health["status"] == "degraded"
        db.close()


# ================================================================== profiler


class TestRuleProfiler:
    def test_counts_and_selectivity_from_firing_log(self):
        db = _db()
        db.create_rule(Rule(
            name="half", event=on_create("A"),
            condition=Condition(guard=lambda b, r: b.get("new_v", 0) > 0),
            action=Action.call(lambda ctx: None)))
        for value in (1, 0, 1, 0):
            with db.transaction() as txn:
                db.create("A", {"v": value}, txn)
        profiles = db.rule_profiler().profiles()
        profile = profiles["half"]
        assert profile.firings == 4
        assert profile.evaluated == 4
        assert profile.satisfied == 2
        assert profile.executed == 2
        assert profile.selectivity == pytest.approx(0.5)
        report = db.rule_profile()
        assert "half" in report and "50%" in report
        assert 'observability="trace"' in report
        db.close()

    def test_cascade_edges_and_self_vs_inclusive_time(self):
        db = _db(observability="trace")
        db.create_rule(Rule(
            name="outer", event=on_create("A"), condition=Condition.true(),
            action=Action.call(lambda ctx: (time.sleep(0.01),
                                            ctx.create("B", {"v": 1})))))
        db.create_rule(Rule(
            name="inner", event=on_create("B"), condition=Condition.true(),
            action=Action.call(lambda ctx: time.sleep(0.01))))
        db.spans.clear()
        with db.transaction() as txn:
            db.create("A", {"v": 0}, txn)
        profiles = db.rule_profiler().profiles()
        outer, inner = profiles["outer"], profiles["inner"]
        assert outer.triggers == {"inner": 1}
        assert inner.triggered_by == {"outer": 1}
        assert list(outer.triggered_by) == [
            key for key in outer.triggered_by if key.startswith("event:")]
        # inner ran nested inside outer (immediate coupling): outer's self
        # time excludes it, outer's inclusive time covers both sleeps.
        assert outer.total_self >= 0.008
        assert inner.total_self >= 0.008
        assert outer.total_inclusive >= outer.total_self + 0.008
        assert outer.total_self <= outer.total_inclusive - 0.008
        timing = outer.timing()
        assert timing["inclusive_p95"] >= timing["self_p95"]
        db.close()

    def test_deferred_child_adds_detached_inclusive_time(self):
        db = _db(observability="trace")
        db.create_rule(Rule(
            name="queuer", event=on_create("A"), condition=Condition.true(),
            action=Action.call(lambda ctx: ctx.create("B", {"v": 1}))))
        db.create_rule(Rule(
            name="at_commit", event=on_create("B"),
            condition=Condition.true(),
            action=Action.call(lambda ctx: time.sleep(0.01)),
            ec_coupling=DEFERRED))
        db.spans.clear()
        with db.transaction() as txn:
            db.create("A", {"v": 0}, txn)
        profiles = db.rule_profiler().profiles()
        # The deferred firing ran after the queuing spans closed; its cost
        # still lands in the cascade-inclusive total of the chain.
        assert profiles["queuer"].total_inclusive >= 0.008
        assert profiles["queuer"].total_self < 0.008
        db.close()

    def test_hottest_ordering_and_report_table(self):
        log = FiringLog()
        for _ in range(5):
            log.append(RuleFiring("cold", "e", IMMEDIATE, IMMEDIATE,
                                  satisfied=True, executed=True))
        for _ in range(20):
            log.append(RuleFiring("hot", "e", IMMEDIATE, IMMEDIATE,
                                  satisfied=True, executed=True))
        profiler = RuleProfiler(log)
        assert [p.name for p in profiler.hottest(2)] == ["hot", "cold"]
        report = profiler.report(top=1)
        assert "hot" in report and "cold" not in report.split("\n")[2]
        payload = profiler.as_dict(top=1)
        assert list(payload["rules"]) == ["hot"]
        assert payload["rules"]["hot"]["firings"] == 20

    def test_report_notes_dropped_firings(self):
        log = FiringLog(capacity=2)
        for index in range(5):
            log.append(RuleFiring("r", "e", IMMEDIATE, IMMEDIATE))
        report = RuleProfiler(log).report()
        assert "3 earlier firings dropped" in report

    def test_empty_profiler(self):
        profiler = RuleProfiler(FiringLog(), SpanRecorder(enabled=False))
        assert profiler.profiles() == {}
        assert "no firings" in profiler.report()

    def test_percentile_of_exact(self):
        values = sorted(float(v) for v in range(1, 101))
        assert percentile_of(values, 50) == pytest.approx(50.5)
        assert percentile_of(values, 95) == pytest.approx(95.05)
        assert percentile_of([3.0], 99) == 3.0
        assert percentile_of([], 50) == 0.0


# ============================================== satellites: histogram/export


class TestHistogramExactness:
    def test_single_value_percentile_is_exact(self):
        registry = MetricsRegistry(enabled=True)
        histogram = registry.histogram("lat")
        histogram.observe(0.0073)
        assert histogram.percentile(50) == pytest.approx(0.0073)
        assert histogram.percentile(99) == pytest.approx(0.0073)

    def test_same_bucket_values_clamped_by_min_max(self):
        registry = MetricsRegistry(enabled=True)
        histogram = registry.histogram("lat")
        for value in (0.0031, 0.0032, 0.0033):
            histogram.observe(value)
        # All three fall in one bucket; the estimate must stay inside the
        # observed [min, max], not wander across the whole bucket width.
        for q in (10, 50, 90):
            estimate = histogram.percentile(q)
            assert 0.0031 <= estimate <= 0.0033


class TestPrometheusRoundTrip:
    def test_help_and_type_once_per_family(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("rule_firings_total", ec="immediate").inc(1)
        registry.counter("rule_firings_total", ec="deferred").inc(2)
        registry.histogram("rule_action_seconds", rule="x").observe(0.001)
        registry.histogram("rule_action_seconds", rule="y").observe(0.002)
        text = prometheus_text(registry)
        assert text.count("# TYPE hipac_rule_firings_total ") == 1
        assert text.count("# HELP hipac_rule_firings_total ") == 1
        assert text.count("# TYPE hipac_rule_action_seconds ") == 1
        # HELP text comes from the curated table, not the fallback.
        assert "coupling mode" in text

    def test_label_values_escaped_and_parse_back(self):
        registry = MetricsRegistry(enabled=True)
        hostile = 'with"quote\\slash\nnewline'
        registry.counter("odd_total", tag=hostile).inc(7)
        text = prometheus_text(registry)
        samples = _parse_prometheus(text)
        assert samples[("hipac_odd_total", (("tag", hostile),))] == 7.0

    def test_full_facade_exposition_parses(self):
        db = _db()
        db.create_rule(Rule(
            name="R", event=on_create("A"), condition=Condition.true(),
            action=Action.call(lambda ctx: None)))
        with db.transaction() as txn:
            db.create("A", {"v": 0}, txn)
        samples = _parse_prometheus(db.prometheus_metrics())
        fired = [value for (name, labels), value in samples.items()
                 if name == "hipac_rule_firings_total"]
        assert sum(fired) >= 1
        # histogram invariants: count equals the +Inf bucket
        for (name, labels), value in samples.items():
            if name.endswith("_count"):
                inf_key = (name[:-len("_count")] + "_bucket",
                           labels + (("le", "+Inf"),))
                assert samples[inf_key] == value
        db.close()


def _parse_prometheus(text: str):
    """Minimal exposition-format parser (the inverse of the exporter's
    escaping); returns {(name, ((label, value), ...)): float}."""
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        match = re.match(r'^([A-Za-z_:][\w:]*)(?:\{(.*)\})? (\S+)$', line)
        assert match, "unparseable exposition line: %r" % line
        name, label_text, value_text = match.groups()
        labels = []
        if label_text:
            for part in re.findall(r'(\w+)="((?:[^"\\]|\\.)*)"', label_text):
                key, raw = part
                unescaped = (raw.replace("\\n", "\n").replace('\\"', '"')
                             .replace("\\\\", "\\"))
                labels.append((key, unescaped))
        value = float("inf") if value_text == "+Inf" else float(value_text)
        samples[(name, tuple(labels))] = value
    return samples


# ========================================================== explain satellite


class TestExplainDroppedNote:
    def test_explain_notes_dropped_records(self):
        from repro.tools.explain import explain

        log = FiringLog(capacity=2)
        for index in range(5):
            log.append(RuleFiring("r%d" % index, "e", IMMEDIATE, IMMEDIATE,
                                  satisfied=True, executed=True))
        rendered = explain(log)
        assert rendered.startswith("(3 earlier firing(s) dropped")
        assert "r4" in rendered

    def test_explain_unchanged_without_drops(self):
        from repro.tools.explain import explain

        log = FiringLog(capacity=10)
        log.append(RuleFiring("r", "e", IMMEDIATE, IMMEDIATE,
                              satisfied=True, executed=True))
        assert "dropped" not in explain(log)
        assert explain(FiringLog()) == "no firings recorded"


# ================================================================= tools.top


class TestTopDashboard:
    def _payload(self, at, commits, firings):
        return {
            "time": at, "uptime": at,
            "stats": {"transactions": {"committed": commits, "aborted": 0},
                      "rules": {"triggered": firings,
                                "conditions_evaluated": firings,
                                "actions_executed": firings,
                                "deferred_queued": 0},
                      "events": {"database_reported": 0},
                      "locks": {"waited": 0}},
            "derived": {"live_transactions": 1, "deferred_queue_depth": 2},
        }

    def test_rates_from_successive_snapshots(self):
        first = self._payload(100.0, commits=10, firings=0)
        second = self._payload(102.0, commits=30, firings=8)
        rows = {label: rate for label, rate, _ in top_tool.rates(first,
                                                                 second)}
        assert rows["txn commits/s"] == pytest.approx(10.0)
        assert rows["rule firings/s"] == pytest.approx(4.0)
        assert top_tool.rates(second, second) == []  # zero interval

    def test_render_frame(self):
        current = self._payload(50.0, commits=1, firings=1)
        rows = [("txn commits/s", 12.5, "")]
        health = {"status": "ok", "alerts_total": 1,
                  "recent": [{"severity": "warning", "kind": "rule_storm",
                              "message": "busy"}]}
        frame = top_tool.render(current, rows, health)
        assert "status ok" in frame
        assert "12.5" in frame
        assert "deferred queue 2" in frame
        assert "rule_storm" in frame

    def test_main_against_live_server(self, capsys):
        db = _db()
        server = db.serve_admin()
        try:
            code = top_tool.main(["--url", server.url, "--interval", "0.05",
                                  "--iterations", "2", "--plain"])
        finally:
            db.close()
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("hipac top") == 2

    def test_main_unreachable_url_errors(self, capsys):
        code = top_tool.main(["--url", "http://127.0.0.1:1",
                              "--iterations", "1", "--plain"])
        assert code == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_format_duration(self):
        assert top_tool.format_duration(5) == "5s"
        assert top_tool.format_duration(125) == "2m05s"
        assert top_tool.format_duration(7322) == "2h02m"
