"""Property-based tests: condition-graph evaluation is equivalent to naive
re-evaluation, for random rule sets and random update streams."""

from hypothesis import given, settings, strategies as st

from repro import (
    Attr,
    AttrType,
    AttributeDef,
    ClassDef,
    Condition,
    HiPAC,
    Query,
)
from repro.events.signal import EventSignal


def fresh_db(use_graph):
    db = HiPAC(lock_timeout=2.0, use_condition_graph=use_graph)
    db.define_class(ClassDef("Stock", (
        AttributeDef("symbol", AttrType.STRING, required=True, indexed=True),
        AttributeDef("price", AttrType.NUMBER, default=0.0),
    )))
    return db


thresholds = st.lists(st.integers(0, 20), min_size=1, max_size=5)

# A stream step: ("create", price) | ("update", index, price) | ("delete", index)
steps = st.lists(
    st.one_of(
        st.tuples(st.just("create"), st.integers(0, 25)),
        st.tuples(st.just("update"), st.integers(0, 9), st.integers(0, 25)),
        st.tuples(st.just("delete"), st.integers(0, 9)),
    ),
    max_size=15,
)


def run_stream(db, stream):
    oids = []
    with db.transaction() as txn:
        for step in stream:
            if step[0] == "create":
                oids.append(db.create(
                    "Stock", {"symbol": "s%d" % len(oids),
                              "price": float(step[1])}, txn))
            else:
                existing = [oid for oid in oids if db.store.exists(oid)]
                if not existing:
                    continue
                target = existing[step[1] % len(existing)]
                if step[0] == "update":
                    db.update(target, {"price": float(step[2])}, txn)
                else:
                    db.delete(target, txn)


def evaluate_all(db, conditions):
    """Evaluate every condition; return (satisfied, sorted symbols) per
    condition."""
    signal = EventSignal(kind="external", name="probe", args={})
    results = []
    with db.transaction() as txn:
        for condition in conditions:
            outcome = db.condition_evaluator.evaluate(condition, signal, txn)
            results.append((outcome.satisfied,
                            sorted(outcome.results[0].values("symbol"))))
    return results


class TestGraphEquivalence:
    @settings(max_examples=50, deadline=None)
    @given(limits=thresholds, stream=steps)
    def test_graph_equals_naive(self, limits, stream):
        conditions = [Condition.of(Query("Stock", Attr("price") > limit))
                      for limit in limits]
        graph_db = fresh_db(use_graph=True)
        naive_db = fresh_db(use_graph=False)
        for db in (graph_db, naive_db):
            with db.transaction() as txn:
                for condition in conditions:
                    db.condition_evaluator.add_rule(condition, txn)
        run_stream(graph_db, stream)
        run_stream(naive_db, stream)
        assert evaluate_all(graph_db, conditions) == \
            evaluate_all(naive_db, conditions)

    @settings(max_examples=50, deadline=None)
    @given(limits=thresholds, committed=steps, aborted=steps)
    def test_graph_ignores_aborted_work(self, limits, committed, aborted):
        """Memories must reflect only surviving state: an aborted stream of
        changes leaves the graph exactly where the committed stream put it."""
        conditions = [Condition.of(Query("Stock", Attr("price") > limit))
                      for limit in limits]
        db = fresh_db(use_graph=True)
        with db.transaction() as txn:
            for condition in conditions:
                db.condition_evaluator.add_rule(condition, txn)
        run_stream(db, committed)
        expected = evaluate_all(db, conditions)

        txn = db.begin()
        oids = [record.oid for record in db.store.extent("Stock")]
        for step in aborted:
            existing = [oid for oid in oids if db.store.exists(oid)]
            if step[0] == "create":
                oids.append(db.create(
                    "Stock", {"symbol": "x%d" % len(oids),
                              "price": float(step[1])}, txn))
            elif step[0] == "update" and existing:
                db.update(existing[step[1] % len(existing)],
                          {"price": float(step[2])}, txn)
            elif step[0] == "delete" and existing:
                db.delete(existing[step[1] % len(existing)], txn)
        db.abort(txn)

        assert evaluate_all(db, conditions) == expected
