"""Property-based tests: transaction abort restores the exact prior state.

For arbitrary sequences of create/update/delete operations — including
nested subtransactions that commit or abort — aborting a top-level
transaction must restore the store (extents, attribute values, indexes) to
exactly its pre-transaction snapshot; committing must preserve exactly the
applied effects.
"""

from hypothesis import given, settings, strategies as st

from repro import AttrType, AttributeDef, ClassDef, HiPAC


def fresh_db():
    db = HiPAC(lock_timeout=2.0)
    db.define_class(ClassDef("Item", (
        AttributeDef("name", AttrType.STRING, required=True, indexed=True),
        AttributeDef("qty", AttrType.INT, default=0),
    )))
    return db


# An op is one of:
#   ("create", name, qty)
#   ("update", target_index, qty)   - applied to an existing object, if any
#   ("delete", target_index)
#   ("subtxn", commit?, [ops])      - nested transaction
ops_strategy = st.deferred(lambda: st.lists(
    st.one_of(
        st.tuples(st.just("create"),
                  st.text(alphabet="abc", min_size=1, max_size=3),
                  st.integers(0, 100)),
        st.tuples(st.just("update"), st.integers(0, 5), st.integers(0, 100)),
        st.tuples(st.just("delete"), st.integers(0, 5)),
        st.tuples(st.just("subtxn"), st.booleans(), ops_strategy),
    ),
    max_size=6,
))


def apply_ops(db, txn, ops, live):
    """Apply an op list; ``live`` tracks OIDs created/visible so far."""
    for op in ops:
        if op[0] == "create":
            live.append(db.create("Item", {"name": op[1], "qty": op[2]}, txn))
        elif op[0] == "update":
            existing = [oid for oid in live if db.store.exists(oid)]
            if existing:
                db.update(existing[op[1] % len(existing)], {"qty": op[2]}, txn)
        elif op[0] == "delete":
            existing = [oid for oid in live if db.store.exists(oid)]
            if existing:
                db.delete(existing[op[1] % len(existing)], txn)
        elif op[0] == "subtxn":
            child = db.begin(txn)
            apply_ops(db, child, op[2], live)
            if op[1]:
                db.commit(child)
            else:
                db.abort(child)


def index_snapshot(db):
    index = db.store.indexes.get("Item", "name")
    return {key: frozenset(index.lookup(key)) for key in list(index.keys())}


class TestAbortRestoresState:
    @settings(max_examples=60, deadline=None)
    @given(setup=ops_strategy, work=ops_strategy)
    def test_abort_is_a_no_op(self, setup, work):
        db = fresh_db()
        live = []
        with db.transaction() as txn:
            apply_ops(db, txn, setup, live)
        before = db.store.snapshot_state()
        before_index = index_snapshot(db)

        txn = db.begin()
        apply_ops(db, txn, work, live)
        db.abort(txn)

        assert db.store.snapshot_state() == before
        assert index_snapshot(db) == before_index

    @settings(max_examples=60, deadline=None)
    @given(setup=ops_strategy, work=ops_strategy)
    def test_commit_equals_flat_replay(self, setup, work):
        """Committing nested work produces the same store state as applying
        the same (surviving) operations without transactions."""
        db1 = fresh_db()
        live1 = []
        with db1.transaction() as txn:
            apply_ops(db1, txn, setup, live1)
            apply_ops(db1, txn, work, live1)
        state_nested = _canonical(db1.store.snapshot_state())

        db2 = fresh_db()
        live2 = []
        with db2.transaction() as txn:
            apply_ops(db2, txn, setup + _surviving(work), live2)
        state_flat = _canonical(db2.store.snapshot_state())
        assert state_nested == state_flat


def _surviving(ops):
    """Flatten op lists, dropping aborted subtransactions."""
    out = []
    for op in ops:
        if op[0] == "subtxn":
            if op[1]:
                out.extend(_surviving(op[2]))
        else:
            out.append(op)
    return out


def _canonical(state):
    """Store snapshot with OIDs replaced by creation order (OIDs differ
    between runs, attribute multisets must not)."""
    return {
        class_name: sorted(
            tuple(sorted(attrs.items())) for attrs in extent.values()
        )
        for class_name, extent in state.items()
    }
