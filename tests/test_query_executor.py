"""Tests for queries and the index-aware executor."""

import pytest

from repro.errors import QueryError
from repro.objstore.executor import QueryExecutor
from repro.objstore.predicates import And, Attr, Compare, EventArg
from repro.objstore.query import Query
from repro.objstore.store import ObjectStore
from repro.objstore.types import AttrType, AttributeDef, ClassDef


def seeded_store():
    store = ObjectStore()
    store.define_class(ClassDef("Stock", (
        AttributeDef("symbol", AttrType.STRING, required=True, indexed=True),
        AttributeDef("price", AttrType.NUMBER, default=0.0),
    )))
    store.define_class(ClassDef("Bond", (
        AttributeDef("rate", AttrType.NUMBER, default=0.0),
    )))
    oids = {}
    for symbol, price in [("A", 10.0), ("B", 20.0), ("C", 30.0), ("A2", 10.0)]:
        oids[symbol] = store.insert("Stock", {"symbol": symbol, "price": price}).oid
    return store, oids


class TestQueryValidation:
    def test_requires_class(self):
        with pytest.raises(QueryError):
            Query("")

    def test_requires_predicate_type(self):
        with pytest.raises(QueryError):
            Query("Stock", predicate="price > 5")

    def test_negative_limit_rejected(self):
        with pytest.raises(QueryError):
            Query("Stock", limit=-1)

    def test_canonical_key_structural(self):
        assert Query("Stock", Attr("p") > 1).canonical_key() == \
            Query("Stock", Attr("p") > 1).canonical_key()

    def test_static_detection(self):
        assert Query("Stock", Attr("p") > 1).is_static()
        assert not Query("Stock", Compare(Attr("p"), ">", EventArg("x"))).is_static()


class TestExecution:
    def test_scan_filters(self):
        store, oids = seeded_store()
        result = QueryExecutor(store).execute(Query("Stock", Attr("price") > 15))
        assert set(result.oids()) == {oids["B"], oids["C"]}

    def test_unknown_class_raises(self):
        store, _ = seeded_store()
        with pytest.raises(Exception):
            QueryExecutor(store).execute(Query("Nope"))

    def test_empty_result_falsy(self):
        store, _ = seeded_store()
        result = QueryExecutor(store).execute(Query("Stock", Attr("price") > 999))
        assert not result
        assert len(result) == 0

    def test_first_on_empty_raises(self):
        store, _ = seeded_store()
        result = QueryExecutor(store).execute(Query("Stock", Attr("price") > 999))
        with pytest.raises(QueryError):
            result.first()

    def test_projection(self):
        store, _ = seeded_store()
        result = QueryExecutor(store).execute(
            Query("Stock", Attr("symbol") == "A", project=("price",)))
        assert result.first().attrs == {"price": 10.0}

    def test_projection_unknown_attr_raises(self):
        store, _ = seeded_store()
        with pytest.raises(QueryError):
            QueryExecutor(store).execute(Query("Stock", project=("color",)))

    def test_order_by_and_limit(self):
        store, _ = seeded_store()
        result = QueryExecutor(store).execute(
            Query("Stock", order_by="price", descending=True, limit=2))
        assert result.values("price") == [30.0, 20.0]

    def test_default_order_is_oid(self):
        store, oids = seeded_store()
        result = QueryExecutor(store).execute(Query("Stock"))
        assert result.oids() == sorted(result.oids())

    def test_bindings_in_predicate(self):
        store, oids = seeded_store()
        query = Query("Stock", Compare(Attr("price"), ">", EventArg("min")))
        result = QueryExecutor(store).execute(query, {"min": 25})
        assert result.oids() == [oids["C"]]

    def test_row_access(self):
        store, _ = seeded_store()
        row = QueryExecutor(store).execute(
            Query("Stock", Attr("symbol") == "B")).first()
        assert row["price"] == 20.0
        assert row.get("missing", "d") == "d"


class TestPlanning:
    def test_index_probe_chosen_for_equality(self):
        store, _ = seeded_store()
        plan = QueryExecutor(store).plan(Query("Stock", Attr("symbol") == "A"))
        assert plan.kind == "index-probe"
        assert plan.index_attr == "symbol"

    def test_scan_for_range(self):
        store, _ = seeded_store()
        plan = QueryExecutor(store).plan(Query("Stock", Attr("price") > 5))
        assert plan.kind == "scan"

    def test_scan_for_unindexed_equality(self):
        store, _ = seeded_store()
        plan = QueryExecutor(store).plan(Query("Stock", Attr("price") == 10.0))
        assert plan.kind == "scan"

    def test_indexes_disabled(self):
        store, _ = seeded_store()
        executor = QueryExecutor(store, use_indexes=False)
        plan = executor.plan(Query("Stock", Attr("symbol") == "A"))
        assert plan.kind == "scan"

    def test_probe_and_scan_agree(self):
        store, _ = seeded_store()
        query = Query("Stock", And(Attr("symbol") == "A", Attr("price") > 5))
        fast = QueryExecutor(store, use_indexes=True).execute(query)
        slow = QueryExecutor(store, use_indexes=False).execute(query)
        assert fast.oids() == slow.oids()

    def test_probe_with_event_arg(self):
        store, oids = seeded_store()
        query = Query("Stock", Compare(Attr("symbol"), "==", EventArg("s")))
        executor = QueryExecutor(store)
        assert executor.plan(query).kind == "index-probe"
        result = executor.execute(query, {"s": "B"})
        assert result.oids() == [oids["B"]]


class TestSubclassQueries:
    def make(self):
        store = ObjectStore()
        store.define_class(ClassDef("Sec", (AttributeDef("v", AttrType.NUMBER),)))
        store.define_class(ClassDef("Stk", (), superclass="Sec"))
        a = store.insert("Sec", {"v": 1.0}).oid
        b = store.insert("Stk", {"v": 2.0}).oid
        return store, a, b

    def test_subclass_instances_included(self):
        store, a, b = self.make()
        result = QueryExecutor(store).execute(Query("Sec"))
        assert set(result.oids()) == {a, b}

    def test_subclass_excluded_on_request(self):
        store, a, b = self.make()
        result = QueryExecutor(store).execute(Query("Sec", include_subclasses=False))
        assert result.oids() == [a]

    def test_materialize_rows_applies_projection(self):
        store, _, _ = self.make()
        executor = QueryExecutor(store)
        records = store.extent("Sec")
        result = executor.materialize_rows(
            Query("Sec", project=("v",), order_by="v", descending=True), records)
        assert result.values("v") == [2.0, 1.0]
