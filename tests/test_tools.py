"""Tests for the rule-base development tools (§7 future work)."""

import pytest

from repro import (
    Action,
    ClassDef,
    Condition,
    CreateObject,
    HiPAC,
    Rule,
    attributes,
    external,
    on_create,
    on_update,
)
from repro.rules.actions import CallStep, DatabaseStep, SignalStep
from repro.tools import (
    Effect,
    RuleBaseAnalyzer,
    analyze_rule_base,
    declared_effects,
    explain,
    render_transaction_tree,
    why_not,
)


def db_rule(name, event, effect_class=None, signal_name=None):
    steps = []
    if effect_class:
        steps.append(DatabaseStep(CreateObject(effect_class, {})))
    if signal_name:
        steps.append(SignalStep(signal_name))
    return Rule(name=name, event=event, condition=Condition.true(),
                action=Action(tuple(steps)))


class TestDeclaredEffects:
    def test_static_database_step(self):
        rule = db_rule("r", on_create("A"), effect_class="B")
        effects = declared_effects(rule)
        assert effects == [Effect.create("B")]

    def test_signal_step(self):
        rule = db_rule("r", on_create("A"), signal_name="ping")
        assert declared_effects(rule) == [Effect.signal("ping")]

    def test_opaque_call_step_yields_nothing(self):
        rule = Rule(name="r", event=on_create("A"),
                    condition=Condition.true(),
                    action=Action((CallStep(lambda ctx: None),)))
        assert declared_effects(rule) == []


class TestTriggeringGraph:
    def test_chain_edges(self):
        rules = [
            db_rule("a2b", on_create("A"), effect_class="B"),
            db_rule("b2c", on_create("B"), effect_class="C"),
        ]
        analyzer = RuleBaseAnalyzer(rules)
        assert analyzer.triggering_edges() == [("a2b", "b2c")]

    def test_signal_edges(self):
        rules = [
            db_rule("emitter", on_create("A"), signal_name="ping"),
            db_rule("listener", external("ping"), effect_class="B"),
        ]
        analyzer = RuleBaseAnalyzer(rules)
        assert ("emitter", "listener") in analyzer.triggering_edges()

    def test_update_attr_scoping(self):
        from repro.objstore.operations import UpdateObject
        from repro.objstore.objects import OID
        writes_price = Rule(
            name="w", event=on_create("A"), condition=Condition.true(),
            action=Action((DatabaseStep(
                UpdateObject(OID("Stock", 1), {"price": 1.0})),)))
        on_price = db_rule("p", on_update("Stock", ["price"]))
        on_volume = db_rule("v", on_update("Stock", ["volume"]))
        analyzer = RuleBaseAnalyzer([writes_price, on_price, on_volume])
        edges = analyzer.triggering_edges()
        assert ("w", "p") in edges
        assert ("w", "v") not in edges

    def test_self_loop_cycle(self):
        rules = [db_rule("loop", on_create("A"), effect_class="A")]
        report = RuleBaseAnalyzer(rules).analyze()
        assert report.cycles == [["loop"]]
        assert report.has_potential_infinite_cascade()

    def test_two_rule_cycle(self):
        rules = [
            db_rule("a2b", on_create("A"), effect_class="B"),
            db_rule("b2a", on_create("B"), effect_class="A"),
        ]
        report = RuleBaseAnalyzer(rules).analyze()
        assert len(report.cycles) == 1
        assert set(report.cycles[0]) == {"a2b", "b2a"}

    def test_acyclic_strata(self):
        rules = [
            db_rule("a2b", on_create("A"), effect_class="B"),
            db_rule("b2c", on_create("B"), effect_class="C"),
            db_rule("standalone", on_create("Z")),
        ]
        report = RuleBaseAnalyzer(rules).analyze()
        assert report.cycles == []
        assert report.strata[0] == ["a2b", "standalone"]
        assert report.strata[1] == ["b2c"]
        assert report.max_cascade_depth() == 2

    def test_write_conflicts_same_event(self):
        rules = [
            db_rule("r1", on_create("A"), effect_class="Shared"),
            db_rule("r2", on_create("A"), effect_class="Shared"),
            db_rule("r3", on_create("A"), effect_class="Other"),
        ]
        report = RuleBaseAnalyzer(rules).analyze()
        assert ("r1", "r2", "Shared") in report.write_conflicts
        assert all(c[2] != "Other" for c in report.write_conflicts)

    def test_opaque_rules_flagged(self):
        rule = Rule(name="opaque", event=on_create("A"),
                    condition=Condition.true(),
                    action=Action((CallStep(lambda ctx: None),)))
        analyzer = RuleBaseAnalyzer([rule])
        assert analyzer.opaque == ["opaque"]

    def test_extra_effects_unflag_and_connect(self):
        opaque = Rule(name="opaque", event=on_create("A"),
                      condition=Condition.true(),
                      action=Action((CallStep(lambda ctx: None),)))
        listener = db_rule("listener", on_create("B"))
        analyzer = RuleBaseAnalyzer(
            [opaque, listener],
            extra_effects={"opaque": [Effect.create("B")]})
        assert analyzer.opaque == []
        assert ("opaque", "listener") in analyzer.triggering_edges()

    def test_report_format(self):
        rules = [db_rule("loop", on_create("A"), effect_class="A")]
        text = RuleBaseAnalyzer(rules).analyze().format()
        assert "INFINITE" in text
        assert "loop" in text

    def test_analyze_live_database(self):
        db = HiPAC()
        db.define_class(ClassDef("A", attributes("v")))
        db.define_class(ClassDef("B", attributes("v")))
        db.create_rule(Rule(
            name="a2b", event=on_create("A"), condition=Condition.true(),
            action=Action((DatabaseStep(CreateObject("B", {"v": 1})),))))
        db.create_rule(Rule(
            name="b-watch", event=on_create("B"), condition=Condition.true(),
            action=Action.call(lambda ctx: None)))
        report = analyze_rule_base(db)
        assert ("a2b", "b-watch") in report.edges
        assert report.opaque_rules == ["b-watch"]


class TestExplain:
    @pytest.fixture
    def db(self):
        database = HiPAC(lock_timeout=2.0)
        database.define_class(ClassDef("A", attributes(("v", "int"))))
        return database

    def test_explain_satisfied_firing(self, db):
        db.create_rule(Rule(name="r", event=on_create("A"),
                            condition=Condition.true(),
                            action=Action.call(lambda ctx: None)))
        with db.transaction() as txn:
            db.create("A", {"v": 1}, txn)
        text = explain(db.firing_log())
        assert "rule 'r'" in text
        assert "condition satisfied" in text
        assert "action executed" in text

    def test_explain_unsatisfied_firing(self, db):
        db.create_rule(Rule(name="r", event=on_create("A"),
                            condition=Condition(guard=lambda b, r: False),
                            action=Action.call(lambda ctx: None)))
        with db.transaction() as txn:
            db.create("A", {"v": 1}, txn)
        assert "NOT satisfied" in explain(db.firing_log())

    def test_explain_empty_log(self, db):
        assert explain(db.firing_log()) == "no firings recorded"

    def test_render_transaction_tree(self, db):
        db.create_rule(Rule(name="r", event=on_create("A"),
                            condition=Condition.true(),
                            action=Action.call(lambda ctx: None)))
        with db.transaction() as txn:
            db.create("A", {"v": 1}, txn)
            top = txn
        tree = render_transaction_tree(top)
        assert "cond:r" in tree
        assert "act:r" in tree
        assert tree.count("\n") == 2

    def test_why_not_unknown_rule(self, db):
        assert "does not exist" in why_not(db, "ghost")

    def test_why_not_disabled(self, db):
        db.create_rule(Rule(name="r", event=on_create("A"),
                            condition=Condition.true(),
                            action=Action.call(lambda ctx: None)))
        db.disable_rule("r")
        assert "DISABLED" in why_not(db, "r")

    def test_why_not_never_triggered(self, db):
        db.create_rule(Rule(name="r", event=on_create("A"),
                            condition=Condition.true(),
                            action=Action.call(lambda ctx: None)))
        assert "never been triggered" in why_not(db, "r")

    def test_why_not_condition_failed(self, db):
        db.create_rule(Rule(name="r", event=on_create("A"),
                            condition=Condition(guard=lambda b, r: False),
                            action=Action.call(lambda ctx: None)))
        with db.transaction() as txn:
            db.create("A", {"v": 1}, txn)
        assert "condition was not satisfied" in why_not(db, "r")

    def test_why_not_healthy_rule(self, db):
        db.create_rule(Rule(name="r", event=on_create("A"),
                            condition=Condition.true(),
                            action=Action.call(lambda ctx: None)))
        with db.transaction() as txn:
            db.create("A", {"v": 1}, txn)
        assert "fired normally" in why_not(db, "r")
