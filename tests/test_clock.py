"""Tests for the clock abstraction."""

import pytest

from repro.clock import SystemClock, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_starts_at_custom_time(self):
        assert VirtualClock(100.0).now() == 100.0

    def test_advance_moves_time(self):
        clock = VirtualClock()
        clock.advance(5.0)
        assert clock.now() == 5.0
        clock.advance(2.5)
        assert clock.now() == 7.5

    def test_advance_returns_new_time(self):
        clock = VirtualClock(10.0)
        assert clock.advance(5.0) == 15.0

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)

    def test_set_jumps_forward(self):
        clock = VirtualClock()
        clock.set(42.0)
        assert clock.now() == 42.0

    def test_set_backwards_rejected(self):
        clock = VirtualClock(10.0)
        with pytest.raises(ValueError):
            clock.set(5.0)

    def test_listeners_called_with_new_time(self):
        clock = VirtualClock()
        seen = []
        clock.subscribe(seen.append)
        clock.advance(3.0)
        clock.advance(4.0)
        assert seen == [3.0, 7.0]

    def test_unsubscribe_stops_notifications(self):
        clock = VirtualClock()
        seen = []
        clock.subscribe(seen.append)
        clock.advance(1.0)
        clock.unsubscribe(seen.append)
        clock.advance(1.0)
        assert seen == [1.0]

    def test_unsubscribe_unknown_listener_is_noop(self):
        clock = VirtualClock()
        clock.unsubscribe(lambda t: None)  # no exception

    def test_zero_advance_notifies(self):
        clock = VirtualClock()
        seen = []
        clock.subscribe(seen.append)
        clock.advance(0.0)
        assert seen == [0.0]


class TestSystemClock:
    def test_now_is_wall_clock(self):
        import time
        clock = SystemClock()
        before = time.time()
        now = clock.now()
        after = time.time()
        assert before <= now <= after

    def test_tick_notifies_listeners(self):
        clock = SystemClock()
        seen = []
        clock.subscribe(seen.append)
        clock.tick()
        assert len(seen) == 1

    def test_unsubscribe(self):
        clock = SystemClock()
        seen = []
        clock.subscribe(seen.append)
        clock.unsubscribe(seen.append)
        clock.tick()
        assert seen == []
