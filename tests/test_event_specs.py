"""Tests for event specifications and signals."""

import pytest

from repro.errors import EventError
from repro.events.signal import EventSignal
from repro.events.spec import (
    Conjunction,
    DatabaseEventSpec,
    Disjunction,
    ExternalEventSpec,
    Sequence,
    TemporalEventSpec,
    after,
    at_time,
    every,
    external,
    on_commit,
    on_create,
    on_update,
)


class TestDatabaseEventSpec:
    def test_unknown_op_rejected(self):
        with pytest.raises(EventError):
            DatabaseEventSpec("munge")

    def test_attrs_only_for_update(self):
        with pytest.raises(EventError):
            DatabaseEventSpec("create", "C", frozenset({"a"}))

    def test_txn_events_not_class_scoped(self):
        with pytest.raises(EventError):
            DatabaseEventSpec("commit", "C")

    def test_structural_equality(self):
        assert on_update("Stock", ["price"]) == on_update("Stock", ["price"])
        assert on_update("Stock", ["price"]) != on_update("Stock", ["volume"])
        assert hash(on_update("Stock")) == hash(on_update("Stock"))

    def test_helpers(self):
        assert on_create("C").op == "create"
        assert on_commit().op == "commit"


class TestTemporalEventSpec:
    def test_absolute_requires_at(self):
        with pytest.raises(EventError):
            TemporalEventSpec("absolute")

    def test_relative_requires_baseline(self):
        with pytest.raises(EventError):
            TemporalEventSpec("relative", offset=5.0)

    def test_relative_negative_offset_rejected(self):
        with pytest.raises(EventError):
            after(on_create("C"), -1.0)

    def test_periodic_requires_positive_period(self):
        with pytest.raises(EventError):
            every(0.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(EventError):
            TemporalEventSpec("lunar")

    def test_helpers_and_equality(self):
        assert at_time(5.0) == at_time(5.0)
        assert every(10.0) == every(10.0)
        assert every(10.0) != every(20.0)
        assert after(on_create("C"), 1.0) == after(on_create("C"), 1.0)


class TestExternalEventSpec:
    def test_requires_name(self):
        with pytest.raises(EventError):
            ExternalEventSpec("")

    def test_helper(self):
        spec = external("trade", "symbol", "shares")
        assert spec.parameters == ("symbol", "shares")

    def test_equality_includes_parameters(self):
        assert external("e", "a") != external("e", "b")


class TestComposites:
    def test_requires_two_members(self):
        with pytest.raises(EventError):
            Disjunction(on_create("C"))

    def test_members_must_be_specs(self):
        with pytest.raises(EventError):
            Sequence(on_create("C"), "not a spec")

    def test_disjunction_order_insensitive(self):
        assert Disjunction(on_create("A"), on_create("B")) == \
            Disjunction(on_create("B"), on_create("A"))

    def test_sequence_order_sensitive(self):
        assert Sequence(on_create("A"), on_create("B")) != \
            Sequence(on_create("B"), on_create("A"))

    def test_conjunction_order_insensitive(self):
        assert Conjunction(on_create("A"), on_create("B")) == \
            Conjunction(on_create("B"), on_create("A"))

    def test_primitives_flattened(self):
        spec = Disjunction(on_create("A"), Sequence(on_create("B"), on_create("C")))
        assert len(spec.primitives()) == 3

    def test_is_composite(self):
        assert Disjunction(on_create("A"), on_create("B")).is_composite()
        assert not on_create("A").is_composite()


class TestSignalBindings:
    def test_database_bindings(self):
        from repro.objstore.objects import OID
        oid = OID("Stock", 1)
        signal = EventSignal(kind="database", op="update", class_name="Stock",
                             oid=oid, old_attrs={"price": 1.0},
                             new_attrs={"price": 2.0}, timestamp=5.0,
                             user="alice")
        bindings = signal.bindings()
        assert bindings["oid"] == oid
        assert bindings["old_price"] == 1.0
        assert bindings["new_price"] == 2.0
        assert bindings["user"] == "alice"
        assert bindings["timestamp"] == 5.0

    def test_changed_attrs(self):
        signal = EventSignal(kind="database", op="update",
                             old_attrs={"a": 1, "b": 2},
                             new_attrs={"a": 1, "b": 3})
        assert signal.changed_attrs() == {"b"}

    def test_external_bindings(self):
        signal = EventSignal(kind="external", name="trade",
                             args={"symbol": "X", "shares": 5})
        bindings = signal.bindings()
        assert bindings["symbol"] == "X"
        assert bindings["event_name"] == "trade"

    def test_temporal_bindings(self):
        signal = EventSignal(kind="temporal", timestamp=9.0, info="tick")
        bindings = signal.bindings()
        assert bindings["time"] == 9.0
        assert bindings["info"] == "tick"

    def test_composite_bindings_merge(self):
        first = EventSignal(kind="external", name="a", args={"x": 1})
        second = EventSignal(kind="external", name="b", args={"y": 2})
        composite = EventSignal(kind="composite", timestamp=3.0,
                                constituents=(first, second))
        bindings = composite.bindings()
        assert bindings["x"] == 1
        assert bindings["y"] == 2
        assert bindings["event_0_x"] == 1
        assert bindings["event_1_y"] == 2

    def test_describe_forms(self):
        assert "external" in EventSignal(kind="external", name="e").describe()
        assert "temporal" in EventSignal(kind="temporal", timestamp=1.0).describe()
