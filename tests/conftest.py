"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import AttrType, AttributeDef, ClassDef, HiPAC


def stock_class(name: str = "Stock") -> ClassDef:
    """A stock class with an indexed symbol and a numeric price."""
    return ClassDef(name, (
        AttributeDef("symbol", AttrType.STRING, required=True, indexed=True),
        AttributeDef("price", AttrType.NUMBER, default=0.0),
        AttributeDef("volume", AttrType.INT, default=0),
    ))


@pytest.fixture
def db() -> HiPAC:
    """A fresh HiPAC instance with a short lock timeout (fast test failure)."""
    return HiPAC(lock_timeout=2.0)


@pytest.fixture
def stock_db(db: HiPAC) -> HiPAC:
    """HiPAC with the Stock class defined."""
    db.define_class(stock_class())
    return db


