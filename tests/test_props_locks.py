"""Property-based tests: lock-manager invariants.

After any sequence of acquire / try_acquire / inherit / release operations
over a small universe of transactions and resources, the lock table must
never contain two holders with incompatible modes unless one is an ancestor
of the other (the Moss exception).
"""

from hypothesis import given, settings, strategies as st

from repro.errors import LockTimeout, TransactionStateError
from repro.txn.locks import LockManager, LockMode, LockResource, compatible
from repro.txn.transaction import Transaction

RESOURCES = [LockResource.for_class("A"), LockResource.for_class("B")]
MODES = list(LockMode.ALL)

# Steps over transactions indexed 0..3 (t1, t2 top-level; t1c child of t1;
# t1cc child of t1c) and resources indexed 0..1:
#   ("acquire", txn, res, mode) — non-blocking semantics via try/timeout
#   ("inherit", txn)            — inherit child's locks to parent
#   ("release", txn)
steps = st.lists(
    st.one_of(
        st.tuples(st.just("acquire"), st.integers(0, 3), st.integers(0, 1),
                  st.sampled_from(MODES)),
        st.tuples(st.just("inherit"), st.integers(0, 3)),
        st.tuples(st.just("release"), st.integers(0, 3)),
    ),
    max_size=25,
)


def check_invariant(locks, txns):
    """No two live holders of one resource hold incompatible modes unless
    related by ancestry."""
    for resource in RESOURCES:
        holders = []
        for txn in txns:
            mode = locks.mode_held(txn, resource)
            if mode is not None:
                holders.append((txn, mode))
        for i, (ta, ma) in enumerate(holders):
            for tb, mb in holders[i + 1:]:
                if compatible(ma, mb):
                    continue
                assert ta.is_descendant_of(tb) or tb.is_descendant_of(ta), (
                    "incompatible co-holders %s(%s) and %s(%s) on %s"
                    % (ta.txn_id, ma, tb.txn_id, mb, resource))


class TestLockInvariants:
    @settings(max_examples=120, deadline=None)
    @given(ops=steps)
    def test_no_incompatible_unrelated_holders(self, ops):
        locks = LockManager(default_timeout=0.01)
        t1 = Transaction("t1")
        t2 = Transaction("t2")
        t1c = Transaction("t1c", t1)
        t1cc = Transaction("t1cc", t1c)
        txns = [t1, t2, t1c, t1cc]
        for op in ops:
            kind = op[0]
            txn = txns[op[1]]
            try:
                if kind == "acquire":
                    locks.try_acquire(txn, RESOURCES[op[2]], op[3])
                elif kind == "inherit":
                    if txn.parent is not None:
                        locks.inherit_to_parent(txn)
                elif kind == "release":
                    locks.release_all(txn)
            except (LockTimeout, TransactionStateError):
                pass
            check_invariant(locks, txns)

    @settings(max_examples=120, deadline=None)
    @given(ops=steps)
    def test_held_locks_bookkeeping_matches_table(self, ops):
        """Transaction.held_locks and the lock table must stay in sync."""
        locks = LockManager(default_timeout=0.01)
        t1 = Transaction("t1")
        t2 = Transaction("t2")
        t1c = Transaction("t1c", t1)
        t1cc = Transaction("t1cc", t1c)
        txns = [t1, t2, t1c, t1cc]
        for op in ops:
            kind = op[0]
            txn = txns[op[1]]
            try:
                if kind == "acquire":
                    locks.try_acquire(txn, RESOURCES[op[2]], op[3])
                elif kind == "inherit":
                    if txn.parent is not None:
                        locks.inherit_to_parent(txn)
                elif kind == "release":
                    locks.release_all(txn)
            except (LockTimeout, TransactionStateError):
                pass
            for txn2 in txns:
                for resource in RESOURCES:
                    table_mode = locks.mode_held(txn2, resource)
                    book_mode = txn2.held_locks.get(resource)
                    assert table_mode == book_mode
