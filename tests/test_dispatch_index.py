"""Tests for the indexed event-dispatch layer (ISSUE 1 tentpole).

Covers the database detector's discrimination index (wildcard, lineage,
attribute sub-index, fast paths), the spec-tag aliasing regression, indexed
vs. linear equivalence on randomized workloads, schema-cache invalidation
under DDL (including transaction undo), the composite/temporal interest-set
gating, and the batched union firing protocol.
"""

import random

import pytest

from repro import (
    Action,
    AttributeDef,
    ClassDef,
    Condition,
    HiPAC,
    Rule,
    Sequence,
    attributes,
    external,
    on_create,
    on_update,
)
from repro.events.database import DatabaseEventDetector
from repro.events.signal import EventSignal
from repro.events.spec import DatabaseEventSpec, after
from repro.objstore.types import Schema


def make_schema():
    schema = Schema()
    schema.define_class(ClassDef("Sec", (AttributeDef("price"),
                                         AttributeDef("volume"))))
    schema.define_class(ClassDef("Stock", (AttributeDef("symbol"),),
                                 superclass="Sec"))
    schema.define_class(ClassDef("Bond", (AttributeDef("coupon"),),
                                 superclass="Sec"))
    schema.define_class(ClassDef("Other", (AttributeDef("x"),)))
    return schema


def make_detector(indexed=True):
    detector = DatabaseEventDetector(make_schema(), indexed_dispatch=indexed)
    seen = []
    detector.sink = seen.append
    return detector, seen


def db_signal(op="create", class_name="Stock", old=None, new=None):
    return EventSignal(kind="database", op=op, class_name=class_name,
                       old_attrs=old, new_attrs=new)


class TestDiscriminationIndex:
    def test_unprogrammed_op_is_fast_path(self):
        detector, seen = make_detector()
        detector.define_event(on_create("Stock"))
        detector.observe(db_signal(op="delete"))
        assert seen == []
        assert detector.stats["fast_path"] == 1
        assert detector.stats["linear_scans"] == 0

    def test_wildcard_bucket_matches_any_class(self):
        detector, seen = make_detector()
        detector.define_event(on_create(None))
        detector.observe(db_signal(class_name="Stock"))
        detector.observe(db_signal(class_name="Other"))
        assert len(seen) == 2

    def test_lineage_probe_finds_ancestor_scoped_spec(self):
        detector, seen = make_detector()
        detector.define_event(on_create("Sec"))
        detector.observe(db_signal(class_name="Stock"))
        assert len(seen) == 1
        assert detector.stats["index_hits"] == 1

    def test_exact_scoped_spec_rejects_subclass(self):
        detector, seen = make_detector()
        detector.define_event(on_create("Sec", include_subclasses=False))
        detector.observe(db_signal(class_name="Stock"))
        assert seen == []
        detector.observe(db_signal(class_name="Sec"))
        assert len(seen) == 1

    def test_attr_subindex_requires_changed_attr(self):
        detector, seen = make_detector()
        detector.define_event(on_update("Stock", attrs=["price"]))
        detector.observe(db_signal(op="update", old={"symbol": "A"},
                                   new={"symbol": "B"}))
        assert seen == []
        detector.observe(db_signal(op="update", old={"price": 1},
                                   new={"price": 2}))
        assert len(seen) == 1

    def test_attr_subindex_reports_spec_once_for_multiple_attrs(self):
        detector, seen = make_detector()
        detector.define_event(on_update("Stock", attrs=["price", "volume"]))
        detector.observe(db_signal(op="update",
                                   old={"price": 1, "volume": 10},
                                   new={"price": 2, "volume": 20}))
        assert len(seen) == 1  # both probe keys hit the same spec: one report

    def test_attr_scoped_spec_on_ancestor_matches_subclass_update(self):
        detector, seen = make_detector()
        detector.define_event(on_update("Sec", attrs=["price"]))
        detector.observe(db_signal(op="update", class_name="Stock",
                                   old={"price": 1}, new={"price": 2}))
        assert len(seen) == 1

    def test_unknown_class_probes_exact_bucket_only(self):
        # e.g. the drop-class signal: the class is already gone from the
        # schema, so only exact-scoped specs can match (same as linear).
        detector, seen = make_detector()
        detector.define_event(DatabaseEventSpec("drop-class", "Ghost"))
        detector.observe(db_signal(op="drop-class", class_name="Ghost"))
        assert len(seen) == 1

    def test_delete_event_removes_index_entries(self):
        detector, seen = make_detector()
        spec = on_update("Stock", attrs=["price"])
        detector.define_event(spec)
        detector.delete_event(spec)
        detector.observe(db_signal(op="update", old={"price": 1},
                                   new={"price": 2}))
        assert seen == []
        assert not detector.relevant("update", "Stock")

    def test_relevant_pre_check(self):
        detector, _ = make_detector()
        detector.define_event(on_update("Sec", attrs=["price"]))
        detector.define_event(on_create("Other"))
        assert detector.relevant("update", "Stock")   # via lineage + attrs
        assert detector.relevant("create", "Other")
        assert not detector.relevant("create", "Stock")
        assert not detector.relevant("delete", "Stock")
        assert not detector.relevant("update", "Other")

    def test_relevant_is_always_true_when_unindexed(self):
        detector, _ = make_detector(indexed=False)
        assert detector.relevant("create", "Stock")

    def test_linear_mode_counts_scans(self):
        detector, seen = make_detector(indexed=False)
        detector.define_event(on_create("Stock"))
        detector.observe(db_signal())
        assert detector.stats["linear_scans"] == 1
        assert len(seen) == 1


class TestSpecTagAliasing:
    def test_caller_signal_not_mutated_when_multiple_specs_match(self):
        detector, seen = make_detector()
        detector.define_event(on_create("Stock"))
        detector.define_event(on_create("Sec"))
        signal = db_signal(class_name="Stock")
        matched = detector.observe(signal)
        assert len(matched) == 2
        assert signal.spec is None, "caller's signal must never be re-tagged"
        assert {s.spec for s in seen} == {on_create("Stock"), on_create("Sec")}
        assert all(s is not signal for s in seen)

    @pytest.mark.parametrize("indexed", [True, False])
    def test_caller_signal_not_mutated_single_match(self, indexed):
        detector, seen = make_detector(indexed=indexed)
        detector.define_event(on_create("Stock"))
        signal = db_signal()
        detector.observe(signal)
        assert signal.spec is None
        assert seen[0].spec == on_create("Stock")


def random_spec(rng):
    op = rng.choice(["create", "update", "delete"])
    class_name = rng.choice([None, "Sec", "Stock", "Bond", "Other"])
    include = rng.random() < 0.7
    attrs = None
    if op == "update" and class_name is not None and rng.random() < 0.5:
        attrs = frozenset(rng.sample(["price", "volume", "symbol"],
                                     rng.randint(1, 2)))
    return DatabaseEventSpec(op, class_name, attrs, include_subclasses=include)


def random_signal(rng):
    op = rng.choice(["create", "update", "delete", "read"])
    class_name = rng.choice(["Sec", "Stock", "Bond", "Other"])
    old = new = None
    if op == "update":
        old = {"price": 1, "volume": 10, "symbol": "A"}
        new = dict(old)
        for attr in rng.sample(["price", "volume", "symbol"],
                               rng.randint(0, 3)):
            new[attr] = rng.randint(2, 9)
    return db_signal(op=op, class_name=class_name, old=old, new=new)


class TestIndexedLinearEquivalence:
    def test_detector_equivalence_on_random_workload(self):
        rng = random.Random(1789)
        specs = {random_spec(rng) for _ in range(120)}
        indexed, _ = make_detector(indexed=True)
        linear, _ = make_detector(indexed=False)
        for spec in specs:
            indexed.define_event(spec)
            linear.define_event(spec)
        for _ in range(400):
            signal = random_signal(rng)
            fast = set(indexed.observe(signal))
            slow = set(linear.observe(signal))
            assert fast == slow, "dispatch divergence on %s" % signal.describe()

    def test_full_stack_equivalence_on_random_workload(self):
        """Identical rule populations + identical operation scripts must
        produce identical firing sequences with and without the index."""
        rng = random.Random(60189)
        spec_pool = list({random_spec(rng) for _ in range(40)})
        script = []
        live = []
        created = 0
        for step in range(200):
            kind = rng.random()
            if kind < 0.45 or not live:
                script.append(("create", rng.choice(["Sec", "Stock", "Bond",
                                                     "Other"]), step))
                live.append(created)
                created += 1
            elif kind < 0.85:
                changes = {attr: rng.randint(0, 9)
                           for attr in rng.sample(["price", "volume"],
                                                  rng.randint(1, 2))}
                script.append(("update", rng.choice(live), changes))
            else:
                victim = rng.choice(live)
                live.remove(victim)
                script.append(("delete", victim))

        def run(indexed_dispatch):
            db = HiPAC(lock_timeout=5.0, indexed_dispatch=indexed_dispatch)
            for cd in (ClassDef("Sec", (AttributeDef("price"),
                                        AttributeDef("volume"))),
                       ClassDef("Stock", (AttributeDef("symbol"),),
                                superclass="Sec"),
                       ClassDef("Bond", (AttributeDef("coupon"),),
                                superclass="Sec"),
                       ClassDef("Other", (AttributeDef("price"),
                                          AttributeDef("volume")))):
                db.define_class(cd)
            fired = []
            for i, spec in enumerate(spec_pool):
                name = "r%03d" % i
                db.create_rule(Rule(
                    name=name, event=spec, priority=i % 4,
                    condition=Condition.true(),
                    action=Action.call(
                        lambda ctx, n=name: fired.append(
                            (n, ctx.signal.op, ctx.signal.class_name)))))
            oids = []
            with db.transaction() as txn:
                for entry in script:
                    if entry[0] == "create":
                        attrs = {"price": 1, "volume": 1}
                        if entry[1] == "Stock":
                            attrs["symbol"] = "S%d" % entry[2]
                        if entry[1] == "Bond":
                            attrs["coupon"] = 1
                        oids.append(db.create(entry[1], attrs, txn))
                    elif entry[0] == "update":
                        db.update(oids[entry[1]], entry[2], txn)
                    else:
                        db.delete(oids[entry[1]], txn)
            return fired

        assert run(True) == run(False)


class TestSchemaCacheInvalidation:
    def test_lineage_and_subclass_caches_invalidate(self):
        schema = make_schema()
        assert schema.lineage("Stock") == ("Stock", "Sec")
        assert set(schema.subclasses("Sec")) == {"Sec", "Stock", "Bond"}
        assert schema.is_subclass("Stock", "Sec")
        schema.define_class(ClassDef("Pref", (), superclass="Stock"))
        assert schema.lineage("Pref") == ("Pref", "Stock", "Sec")
        assert set(schema.subclasses("Sec")) == {"Sec", "Stock", "Bond", "Pref"}
        assert schema.is_subclass("Pref", "Sec")
        schema.drop_class("Pref")
        assert set(schema.subclasses("Sec")) == {"Sec", "Stock", "Bond"}
        assert not schema.is_subclass("Pref", "Sec") if schema.has("Pref") \
            else True

    @pytest.mark.parametrize("indexed", [True, False])
    def test_subclass_scoped_rule_tracks_ddl(self, indexed):
        """A rule on an ancestor class must start firing for a subclass
        defined *after* the rule, and stop after the subclass is dropped."""
        db = HiPAC(lock_timeout=5.0, indexed_dispatch=indexed)
        db.define_class(ClassDef("Sec", attributes("price")))
        hits = []
        db.create_rule(Rule(
            name="watch", event=on_create("Sec"),
            condition=Condition.true(),
            action=Action.call(lambda ctx: hits.append(ctx.signal.class_name))))
        db.define_class(ClassDef("Mid", (), superclass="Sec"))
        db.define_class(ClassDef("Leaf", (), superclass="Mid"))
        with db.transaction() as txn:
            oid = db.create("Leaf", {"price": 1}, txn)
        assert hits == ["Leaf"]
        with db.transaction() as txn:
            db.delete(oid, txn)
        # Drop the leaf: creates of remaining classes still match, and the
        # cached closure must not resurrect the dropped class.
        db.drop_class("Leaf")
        with db.transaction() as txn:
            db.create("Mid", {"price": 2}, txn)
        assert hits == ["Leaf", "Mid"]
        assert "Leaf" not in db.store.schema.subclasses("Sec")

    @pytest.mark.parametrize("indexed", [True, False])
    def test_aborted_ddl_restores_cached_hierarchy(self, indexed):
        """The transaction-undo schema paths must invalidate the caches too."""
        db = HiPAC(lock_timeout=5.0, indexed_dispatch=indexed)
        db.define_class(ClassDef("Sec", attributes("price")))
        txn = db.begin()
        db.define_class(ClassDef("Temp", (), superclass="Sec"), txn)
        assert "Temp" in db.store.schema.subclasses("Sec")
        db.abort(txn)
        assert "Temp" not in db.store.schema.subclasses("Sec")
        assert not db.store.schema.has("Temp")

    def test_dropped_intermediate_stops_matching_at_detector_level(self):
        schema = Schema()
        schema.define_class(ClassDef("A", ()))
        schema.define_class(ClassDef("B", (), superclass="A"))
        detector = DatabaseEventDetector(schema)
        seen = []
        detector.sink = seen.append
        detector.define_event(on_create("A"))
        detector.observe(db_signal(class_name="B"))
        assert len(seen) == 1
        schema.drop_class("B")
        detector.observe(db_signal(class_name="B"))  # B unknown now
        assert len(seen) == 1


class TestInterestSetGating:
    def test_database_signals_skip_external_only_composite(self):
        db = HiPAC(lock_timeout=5.0)
        db.define_class(ClassDef("Stock", attributes("price")))
        db.define_event("e1")
        db.define_event("e2")
        hits = []
        db.create_rule(Rule(
            name="seq", event=Sequence(external("e1"), external("e2")),
            condition=Condition.true(),
            action=Action.call(lambda ctx: hits.append(1))))
        db.create_rule(Rule(
            name="db-rule", event=on_create("Stock"),
            condition=Condition.true(),
            action=Action.call(lambda ctx: None)))
        before = db.composite_detector.stats["feeds"]
        with db.transaction() as txn:
            db.create("Stock", {"price": 1}, txn)
        # The create reached the Rule Manager (db-rule fired) but was not
        # fed to the automata: no composite member wants database signals.
        assert db.composite_detector.stats["feeds"] == before
        assert db.composite_detector.stats["feeds_skipped"] > 0
        db.signal_event("e1")
        db.signal_event("e2")
        assert hits == [1]

    def test_temporal_baseline_gating(self):
        db = HiPAC(lock_timeout=5.0)
        db.define_event("base")
        ticks = []
        db.create_rule(Rule(
            name="rel", event=after(external("base"), 5.0),
            condition=Condition.true(),
            action=Action.call(lambda ctx: ticks.append(ctx.signal.timestamp))))
        skipped_before = db.temporal_detector.stats["baseline_feeds_skipped"]
        # Rule creation signals create-rule events: database signals no
        # baseline wants — they must be gated out.
        db.define_class(ClassDef("Noise", attributes("x")))
        with db.transaction() as txn:
            db.create("Noise", {"x": 1}, txn)
        assert db.temporal_detector.stats["baseline_feeds_skipped"] \
            >= skipped_before
        fed_before = db.temporal_detector.stats["baseline_feeds"]
        db.signal_event("base")
        assert db.temporal_detector.stats["baseline_feeds"] == fed_before + 1
        db.advance_time(5.0)
        assert ticks


class TestBatchUnionFiring:
    def test_global_priority_order_across_specs(self):
        """Rules triggered through *different* specs by one operation fire
        in one globally priority-sorted group (§6.2), not per-spec."""
        db = HiPAC(lock_timeout=5.0)
        db.define_class(ClassDef("Sec", attributes("price")))
        db.define_class(ClassDef("Stock", (), superclass="Sec"))
        order = []
        db.create_rule(Rule(
            name="a-low", event=on_update("Sec"), priority=1,
            condition=Condition.true(),
            action=Action.call(lambda ctx: order.append("a-low"))))
        db.create_rule(Rule(
            name="z-high", event=on_update("Stock"), priority=5,
            condition=Condition.true(),
            action=Action.call(lambda ctx: order.append("z-high"))))
        with db.transaction() as txn:
            oid = db.create("Stock", {"price": 1}, txn)
            order.clear()
            db.update(oid, {"price": 2}, txn)
        assert order == ["z-high", "a-low"]

    def test_one_operation_advances_sequence_once(self):
        """One database operation is one event occurrence: a sequence whose
        two members both match the same operation must not double-advance."""
        db = HiPAC(lock_timeout=5.0)
        db.define_class(ClassDef("Sec", attributes("price")))
        db.define_class(ClassDef("Stock", (), superclass="Sec"))
        hits = []
        db.create_rule(Rule(
            name="seq",
            event=Sequence(on_create("Sec"), on_create("Stock")),
            condition=Condition.true(),
            action=Action.call(lambda ctx: hits.append(1))))
        with db.transaction() as txn:
            db.create("Stock", {"price": 1}, txn)  # matches both members
        assert hits == [], "single operation must advance the automaton once"
        with db.transaction() as txn:
            db.create("Stock", {"price": 2}, txn)
        assert hits == [1]

    def test_rule_registration_runs_once_with_wildcard_spectator(self):
        """A wildcard create rule also matches create-rule events; rule
        management must still run once per operation (no double-register)."""
        db = HiPAC(lock_timeout=5.0)
        db.define_class(ClassDef("Stock", attributes("price")))
        seen = []
        db.create_rule(Rule(
            name="spectator", event=on_create(None),
            condition=Condition.true(),
            action=Action.call(lambda ctx: seen.append(ctx.signal.class_name))))
        db.create_rule(Rule(
            name="second", event=on_create("Stock"),
            condition=Condition.true(),
            action=Action.call(lambda ctx: None)))
        assert sorted(db.rule_names()) == ["second", "spectator"]
        with db.transaction() as txn:
            db.create("Stock", {"price": 1}, txn)
        assert seen.count("Stock") == 1


class TestStatsAndTracer:
    def test_facade_stats_aggregate_detector_counters(self):
        db = HiPAC(lock_timeout=5.0)
        db.define_class(ClassDef("Stock", attributes("price")))
        db.create_rule(Rule(
            name="r", event=on_update("Stock"),
            condition=Condition.true(),
            action=Action.call(lambda ctx: None)))
        with db.transaction() as txn:
            oid = db.create("Stock", {"price": 1}, txn)
            db.update(oid, {"price": 2}, txn)
        stats = db.stats()
        events = stats["events"]
        for key in ("database_reported", "database_index_hits",
                    "database_fast_path", "database_index_misses",
                    "composite_feeds_skipped", "temporal_baseline_feeds",
                    "external_reported", "transaction_reported"):
            assert key in events, "missing detector counter %r" % key
        assert events["database_index_hits"] >= 1
        assert stats["rules"]["signals"] >= 1
        # The create matched no spec (only update is programmed for Stock):
        # the Object Manager skipped signal construction entirely.
        assert stats["objects"]["signals_skipped"] >= 1

    def test_tracer_collects_dispatch_counters(self):
        db = HiPAC(lock_timeout=5.0)
        db.define_class(ClassDef("Stock", attributes("price")))
        db.create_rule(Rule(
            name="r", event=on_update("Stock"),
            condition=Condition.true(),
            action=Action.call(lambda ctx: None)))
        db.tracer.start()
        with db.transaction() as txn:
            oid = db.create("Stock", {"price": 1}, txn)  # skipped: no spec
            db.update(oid, {"price": 2}, txn)            # index hit
        trace = db.tracer.stop()
        assert trace.counters.get("om_signal_skipped", 0) >= 1
        assert trace.counters.get("db_dispatch_index_hit", 0) >= 1
