"""Failure-injection tests: lock timeouts, aborted firings, guard crashes,
and misbehaving applications must leave the system consistent."""

import threading
import time

import pytest

from repro import (
    Action,
    ApplicationError,
    ClassDef,
    Condition,
    HiPAC,
    Query,
    Rule,
    attributes,
    on_update,
)
from repro.rules.actions import RequestStep


@pytest.fixture
def db():
    database = HiPAC(lock_timeout=0.5)
    database.define_class(ClassDef("Stock", attributes(
        "symbol", ("price", "number"))))
    database.define_class(ClassDef("Audit", attributes("note")))
    return database


class TestSeparateFiringLockTimeout:
    def test_timed_out_separate_firing_is_contained(self, db):
        """A separate firing blocked past the lock timeout aborts itself;
        the application and the rest of the system continue unharmed."""
        db.create_rule(Rule(
            name="auditor",
            event=on_update("Stock", attrs=["price"]),
            condition=Condition.of(Query("Stock")),  # needs extent S lock
            action=Action.call(lambda ctx: None),
            ec_coupling="separate",
        ))
        with db.transaction() as txn:
            oid = db.create("Stock", {"symbol": "A", "price": 1.0}, txn)
        blocker = db.begin()
        db.update(oid, {"price": 2.0}, blocker)  # holds X; firing will block
        # Trigger a firing from another transaction? The update above is the
        # trigger itself: the separate firing spawned and now blocks on the
        # extent lock until `blocker` ends or the timeout hits.
        time.sleep(0.8)  # beyond the 0.5s lock timeout
        db.abort(blocker)
        assert db.drain(timeout=10.0)
        firings = db.firing_log().for_rule("auditor")
        assert firings
        # The firing either timed out (error recorded) or squeaked through
        # after the abort; in both cases no background error escalates.
        assert db.rule_manager.background_errors == []

    def test_system_usable_after_timeout(self, db):
        self.test_timed_out_separate_firing_is_contained(db)
        with db.transaction() as txn:
            db.create("Stock", {"symbol": "B", "price": 1.0}, txn)


class TestGuardCrash:
    def test_condition_guard_crash_fails_operation_and_rolls_back(self, db):
        db.create_rule(Rule(
            name="bad-guard",
            event=on_update("Stock", attrs=["price"]),
            condition=Condition(guard=lambda b, r: 1 / 0),
            action=Action.call(lambda ctx: None),
        ))
        with db.transaction() as setup:
            oid = db.create("Stock", {"symbol": "A", "price": 1.0}, setup)
        from repro.errors import ConditionError
        txn = db.begin()
        with pytest.raises(ConditionError):
            db.update(oid, {"price": 2.0}, txn)
        db.abort(txn)
        with db.transaction() as r:
            assert db.read(oid, r)["price"] == 1.0


class TestApplicationFailure:
    def test_failing_application_aborts_immediate_firing(self, db):
        app = db.application("flaky")
        app.operations.register("notify", lambda: 1 / 0)
        db.create_rule(Rule(
            name="notify-rule",
            event=on_update("Stock", attrs=["price"]),
            condition=Condition.true(),
            action=Action.of(RequestStep("flaky", "notify")),
        ))
        with db.transaction() as setup:
            oid = db.create("Stock", {"symbol": "A", "price": 1.0}, setup)
        txn = db.begin()
        with pytest.raises(ApplicationError):
            db.update(oid, {"price": 2.0}, txn)
        db.abort(txn)
        with db.transaction() as r:
            assert db.read(oid, r)["price"] == 1.0

    def test_failing_application_in_separate_firing_recorded(self, db):
        app = db.application("flaky")
        app.operations.register("notify", lambda: 1 / 0)
        db.create_rule(Rule(
            name="notify-rule",
            event=on_update("Stock", attrs=["price"]),
            condition=Condition.true(),
            action=Action.of(RequestStep("flaky", "notify")),
            ec_coupling="separate",
        ))
        with db.transaction() as setup:
            oid = db.create("Stock", {"symbol": "A", "price": 1.0}, setup)
        with db.transaction() as txn:
            db.update(oid, {"price": 2.0}, txn)
        db.drain()
        assert db.rule_manager.background_errors
        # The triggering transaction was unaffected:
        with db.transaction() as r:
            assert db.read(oid, r)["price"] == 2.0


class TestActionWritesRolledBackOnLaterFailure:
    def test_first_steps_rolled_back_when_later_step_fails(self, db):
        def two_steps(ctx):
            ctx.create("Audit", {"note": "step1"})
            raise RuntimeError("step2 failed")

        db.create_rule(Rule(
            name="partial",
            event=on_update("Stock", attrs=["price"]),
            condition=Condition.true(),
            action=Action.call(two_steps),
        ))
        with db.transaction() as setup:
            oid = db.create("Stock", {"symbol": "A", "price": 1.0}, setup)
        txn = db.begin()
        with pytest.raises(RuntimeError):
            db.update(oid, {"price": 2.0}, txn)
        db.abort(txn)
        with db.transaction() as r:
            assert len(db.query(Query("Audit"), r)) == 0


class TestSoak:
    def test_mixed_workload_soak(self):
        """A few thousand operations across all mechanisms; invariants at
        the end: no stuck locks, no live transactions, no background
        errors, condition-graph memories exact."""
        db = HiPAC(lock_timeout=10.0)
        db.define_class(ClassDef("Stock", attributes(
            "symbol", ("price", "number"))))
        hits = []
        lock = threading.Lock()

        def tally(ctx):
            with lock:
                hits.append(1)

        from repro import Attr
        db.create_rule(Rule(
            name="imm", event=on_update("Stock", attrs=["price"]),
            condition=Condition.of(Query("Stock", Attr("price") > 100)),
            action=Action.call(tally)))
        db.create_rule(Rule(
            name="def", event=on_update("Stock", attrs=["price"]),
            condition=Condition.of(Query("Stock", Attr("price") > 100)),
            action=Action.call(tally), ec_coupling="deferred"))
        db.create_rule(Rule(
            name="sep", event=on_update("Stock", attrs=["price"]),
            condition=Condition.true(),
            action=Action.call(tally), ec_coupling="separate"))

        import random
        rng = random.Random(99)
        oids = []
        with db.transaction() as txn:
            for i in range(20):
                oids.append(db.create(
                    "Stock", {"symbol": "S%d" % i, "price": 50.0}, txn))
        for round_no in range(150):
            txn = db.begin()
            for _ in range(3):
                db.update(rng.choice(oids),
                          {"price": rng.uniform(10, 200)}, txn)
            if rng.random() < 0.2:
                db.abort(txn)
            else:
                db.commit(txn)
        assert db.drain(timeout=60.0)
        assert db.rule_manager.background_errors == []
        assert db.transaction_manager.live_transactions() == []
        assert db.locks.resource_count() == 0
        # Graph memory exactness: recompute from scratch and compare.
        query = Query("Stock", Attr("price") > 100)
        node = db.condition_evaluator.graph.node_for(query)
        with db.transaction() as r:
            truth = set(db.query(query, r).oids())
        assert node.memory == truth
        assert hits  # rules actually fired during the soak
