"""Tests for the passive-DBMS baseline: polling clients and simple triggers."""

import pytest

from repro import Attr, AttrType, AttributeDef, ClassDef, Query
from repro.baseline import PassiveDBMS, PollingClient, Trigger, TriggerSystem
from repro.errors import RuleError


@pytest.fixture
def pdb():
    db = PassiveDBMS(lock_timeout=2.0)
    db.define_class(ClassDef("Stock", (
        AttributeDef("symbol", AttrType.STRING, required=True, indexed=True),
        AttributeDef("price", AttrType.NUMBER, default=0.0),
    )))
    return db


class TestPassiveDBMS:
    def test_crud_works(self, pdb):
        with pdb.transaction() as txn:
            oid = pdb.create("Stock", {"symbol": "A", "price": 1.0}, txn)
            pdb.update(oid, {"price": 2.0}, txn)
            assert pdb.read(oid, txn)["price"] == 2.0

    def test_abort_rolls_back(self, pdb):
        txn = pdb.begin()
        pdb.create("Stock", {"symbol": "A"}, txn)
        pdb.abort(txn)
        with pdb.transaction() as r:
            assert len(pdb.query(Query("Stock"), r)) == 0

    def test_no_event_machinery_runs(self, pdb):
        # The detector exists but is never programmed nor wired.
        assert pdb.object_manager.event_detector.sink is None
        with pdb.transaction() as txn:
            pdb.create("Stock", {"symbol": "A"}, txn)
        assert pdb.object_manager.event_detector.stats["reported"] == 0


class TestPollingClient:
    def test_detects_new_matches(self, pdb):
        detected = []
        client = PollingClient(
            pdb, Query("Stock", Attr("price") > 50),
            on_detect=lambda oid, attrs: detected.append(attrs["symbol"]),
            interval=1.0)
        client.poll(0.0)
        assert detected == []
        with pdb.transaction() as txn:
            pdb.create("Stock", {"symbol": "HI", "price": 90.0}, txn)
        client.poll(1.0)
        assert detected == ["HI"]

    def test_no_duplicate_detection(self, pdb):
        client = PollingClient(pdb, Query("Stock", Attr("price") > 50))
        with pdb.transaction() as txn:
            pdb.create("Stock", {"symbol": "HI", "price": 90.0}, txn)
        client.poll(0.0)
        client.poll(1.0)
        assert client.stats.detections == 1
        assert client.stats.empty_polls == 1

    def test_redetects_after_leaving_and_reentering(self, pdb):
        client = PollingClient(pdb, Query("Stock", Attr("price") > 50))
        with pdb.transaction() as txn:
            oid = pdb.create("Stock", {"symbol": "HI", "price": 90.0}, txn)
        client.poll(0.0)
        with pdb.transaction() as txn:
            pdb.update(oid, {"price": 10.0}, txn)
        client.poll(1.0)
        with pdb.transaction() as txn:
            pdb.update(oid, {"price": 95.0}, txn)
        fresh = client.poll(2.0)
        assert fresh == [oid]

    def test_rows_examined_counts_extent(self, pdb):
        with pdb.transaction() as txn:
            for i in range(10):
                pdb.create("Stock", {"symbol": "S%d" % i, "price": 1.0}, txn)
        client = PollingClient(pdb, Query("Stock", Attr("price") > 50))
        client.poll(0.0)
        client.poll(1.0)
        assert client.stats.rows_examined == 20

    def test_run_until_executes_due_polls(self, pdb):
        client = PollingClient(pdb, Query("Stock"), interval=2.0)
        ran = client.run_until(10.0)
        assert ran == 6  # t=0,2,4,6,8,10
        assert client.next_due == 12.0


class TestTriggers:
    def test_insert_trigger_fires(self, pdb):
        system = TriggerSystem(pdb)
        log = []
        system.create_trigger(Trigger(
            "log-insert", "Stock", "insert",
            lambda inv: log.append(inv.new["symbol"])))
        with pdb.transaction() as txn:
            pdb.create("Stock", {"symbol": "A"}, txn)
        assert log == ["A"]

    def test_update_trigger_sees_old_and_new(self, pdb):
        system = TriggerSystem(pdb)
        seen = []
        system.create_trigger(Trigger(
            "watch", "Stock", "update",
            lambda inv: seen.append((inv.old["price"], inv.new["price"]))))
        with pdb.transaction() as txn:
            oid = pdb.create("Stock", {"symbol": "A", "price": 1.0}, txn)
            pdb.update(oid, {"price": 2.0}, txn)
        assert seen == [(1.0, 2.0)]

    def test_delete_trigger(self, pdb):
        system = TriggerSystem(pdb)
        log = []
        system.create_trigger(Trigger(
            "log-del", "Stock", "delete", lambda inv: log.append(inv.oid)))
        with pdb.transaction() as txn:
            oid = pdb.create("Stock", {"symbol": "A"}, txn)
            pdb.delete(oid, txn)
        assert log == [oid]

    def test_trigger_action_runs_in_triggering_transaction(self, pdb):
        pdb.define_class(ClassDef("Audit", (AttributeDef("note"),)))
        system = TriggerSystem(pdb)
        system.create_trigger(Trigger(
            "audit", "Stock", "insert",
            lambda inv: inv.db.create("Audit", {"note": "ins"}, inv.txn)))
        txn = pdb.begin()
        pdb.create("Stock", {"symbol": "A"}, txn)
        pdb.abort(txn)
        with pdb.transaction() as r:
            assert len(pdb.query(Query("Audit"), r)) == 0

    def test_cascade_depth_bounded(self, pdb):
        system = TriggerSystem(pdb, max_depth=4)
        system.create_trigger(Trigger(
            "loop", "Stock", "insert",
            lambda inv: inv.db.create(
                "Stock", {"symbol": inv.new["symbol"] + "x"}, inv.txn)))
        txn = pdb.begin()
        with pytest.raises(RuleError):
            pdb.create("Stock", {"symbol": "A"}, txn)
        pdb.abort(txn)

    def test_unsupported_operation_rejected(self):
        with pytest.raises(RuleError):
            Trigger("bad", "Stock", "commit", lambda inv: None)

    def test_drop_trigger(self, pdb):
        system = TriggerSystem(pdb)
        log = []
        system.create_trigger(Trigger(
            "t", "Stock", "insert", lambda inv: log.append(1)))
        system.drop_trigger("t")
        with pdb.transaction() as txn:
            pdb.create("Stock", {"symbol": "A"}, txn)
        assert log == []
