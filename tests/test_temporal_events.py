"""Tests for the temporal event detector on a virtual clock."""


from repro.clock import VirtualClock
from repro.events.signal import EventSignal
from repro.events.spec import after, at_time, every, external, on_create
from repro.events.temporal import TemporalEventDetector


def make_detector(start=0.0):
    clock = VirtualClock(start)
    detector = TemporalEventDetector(clock)
    seen = []
    detector.sink = seen.append
    return clock, detector, seen


class TestAbsolute:
    def test_fires_once_at_time(self):
        clock, detector, seen = make_detector()
        detector.define_event(at_time(10.0))
        clock.advance(9.0)
        assert seen == []
        clock.advance(2.0)
        assert len(seen) == 1
        assert seen[0].timestamp == 10.0
        clock.advance(100.0)
        assert len(seen) == 1

    def test_past_time_never_fires(self):
        clock, detector, seen = make_detector(start=20.0)
        detector.define_event(at_time(10.0))
        clock.advance(100.0)
        assert seen == []

    def test_info_included(self):
        clock, detector, seen = make_detector()
        detector.define_event(at_time(5.0, info="deadline"))
        clock.advance(5.0)
        assert seen[0].info == "deadline"


class TestPeriodic:
    def test_fires_every_period(self):
        clock, detector, seen = make_detector()
        detector.define_event(every(10.0))
        clock.advance(35.0)
        assert [s.timestamp for s in seen] == [10.0, 20.0, 30.0]

    def test_offset_shifts_anchor(self):
        clock, detector, seen = make_detector()
        detector.define_event(every(10.0, offset=5.0))
        clock.advance(30.0)
        assert [s.timestamp for s in seen] == [15.0, 25.0]

    def test_big_jump_fires_each_occurrence_in_order(self):
        clock, detector, seen = make_detector()
        detector.define_event(every(1.0))
        clock.advance(5.5)
        assert [s.timestamp for s in seen] == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_delete_stops_firing(self):
        clock, detector, seen = make_detector()
        spec = every(10.0)
        detector.define_event(spec)
        clock.advance(10.0)
        detector.delete_event(spec)
        clock.advance(50.0)
        assert len(seen) == 1

    def test_disable_suppresses_but_keeps_schedule(self):
        clock, detector, seen = make_detector()
        spec = every(10.0)
        detector.define_event(spec)
        detector.disable_event(spec)
        clock.advance(30.0)
        assert seen == []
        detector.enable_event(spec)
        clock.advance(10.0)
        assert [s.timestamp for s in seen] == [40.0]


class TestRelative:
    def baseline_signal(self, t=0.0):
        return EventSignal(kind="external", name="base", args={}, timestamp=t)

    def test_fires_offset_after_baseline(self):
        clock, detector, seen = make_detector()
        detector.define_event(after(external("base"), 5.0))
        detector.observe_baseline(self.baseline_signal(t=2.0))
        clock.advance(6.0)
        assert seen == []
        clock.advance(1.0)
        assert [s.timestamp for s in seen] == [7.0]

    def test_each_baseline_occurrence_schedules(self):
        clock, detector, seen = make_detector()
        detector.define_event(after(external("base"), 5.0))
        detector.observe_baseline(self.baseline_signal(t=0.0))
        detector.observe_baseline(self.baseline_signal(t=1.0))
        clock.advance(10.0)
        assert [s.timestamp for s in seen] == [5.0, 6.0]

    def test_non_matching_baseline_ignored(self):
        clock, detector, seen = make_detector()
        detector.define_event(after(external("base"), 5.0))
        other = EventSignal(kind="external", name="other", args={}, timestamp=0.0)
        detector.observe_baseline(other)
        clock.advance(10.0)
        assert seen == []

    def test_database_baseline(self):
        clock, detector, seen = make_detector()
        detector.define_event(after(on_create("Stock"), 3.0))
        db_signal = EventSignal(kind="database", op="create",
                                class_name="Stock", timestamp=1.0)
        detector.observe_baseline(db_signal)
        clock.advance(4.0)
        assert [s.timestamp for s in seen] == [4.0]


class TestPeriodicWithBaseline:
    def test_baseline_anchors_period(self):
        clock, detector, seen = make_detector()
        detector.define_event(every(10.0, baseline=external("base")))
        base = EventSignal(kind="external", name="base", args={}, timestamp=5.0)
        detector.observe_baseline(base)
        clock.advance(26.0)
        assert [s.timestamp for s in seen] == [15.0, 25.0]

    def test_new_baseline_re_anchors(self):
        clock, detector, seen = make_detector()
        detector.define_event(every(10.0, baseline=external("base")))
        detector.observe_baseline(
            EventSignal(kind="external", name="base", args={}, timestamp=0.0))
        clock.advance(12.0)
        assert [s.timestamp for s in seen] == [10.0]
        detector.observe_baseline(
            EventSignal(kind="external", name="base", args={}, timestamp=12.0))
        clock.advance(11.0)
        assert [s.timestamp for s in seen] == [10.0, 22.0]


class TestHousekeeping:
    def test_pending_count(self):
        clock, detector, seen = make_detector()
        detector.define_event(at_time(10.0))
        detector.define_event(every(5.0))
        assert detector.pending_count() == 2

    def test_close_detaches(self):
        clock, detector, seen = make_detector()
        detector.define_event(every(5.0))
        detector.close()
        clock.advance(20.0)
        assert seen == []
