"""Tests for the detector base protocol and the database/external detectors."""

import pytest

from repro.errors import EventError
from repro.events.database import DatabaseEventDetector
from repro.events.external import ExternalEventDetector
from repro.events.signal import EventSignal
from repro.events.spec import external, on_create, on_update
from repro.objstore.types import AttributeDef, ClassDef, Schema


def make_schema():
    schema = Schema()
    schema.define_class(ClassDef("Sec", (AttributeDef("price"),)))
    schema.define_class(ClassDef("Stock", (AttributeDef("symbol"),),
                                 superclass="Sec"))
    return schema


class TestDetectorProtocol:
    def test_define_refcounts(self):
        detector = DatabaseEventDetector(make_schema())
        spec = on_create("Stock")
        detector.define_event(spec)
        detector.define_event(spec)
        detector.delete_event(spec)
        assert detector.is_defined(spec)
        detector.delete_event(spec)
        assert not detector.is_defined(spec)

    def test_delete_undefined_raises(self):
        detector = DatabaseEventDetector(make_schema())
        with pytest.raises(EventError):
            detector.delete_event(on_create("Stock"))

    def test_enable_disable(self):
        detector = DatabaseEventDetector(make_schema())
        spec = on_create("Stock")
        detector.define_event(spec)
        assert detector.is_enabled(spec)
        detector.disable_event(spec)
        assert not detector.is_enabled(spec)
        detector.enable_event(spec)
        assert detector.is_enabled(spec)

    def test_enable_undefined_raises(self):
        detector = DatabaseEventDetector(make_schema())
        with pytest.raises(EventError):
            detector.enable_event(on_create("Stock"))

    def test_wrong_spec_type_rejected(self):
        detector = DatabaseEventDetector(make_schema())
        with pytest.raises(EventError):
            detector.define_event(external("e"))


class TestDatabaseDetector:
    def make(self):
        detector = DatabaseEventDetector(make_schema())
        seen = []
        detector.sink = seen.append
        return detector, seen

    def signal(self, op="create", class_name="Stock", old=None, new=None):
        return EventSignal(kind="database", op=op, class_name=class_name,
                           old_attrs=old, new_attrs=new)

    def test_matching_spec_reported(self):
        detector, seen = self.make()
        detector.define_event(on_create("Stock"))
        matched = detector.observe(self.signal())
        assert len(matched) == 1
        assert len(seen) == 1
        assert seen[0].spec == on_create("Stock")

    def test_unprogrammed_not_reported(self):
        detector, seen = self.make()
        detector.observe(self.signal())
        assert seen == []

    def test_class_wildcard(self):
        detector, seen = self.make()
        detector.define_event(on_create(None))
        detector.observe(self.signal(class_name="Stock"))
        detector.observe(self.signal(class_name="Sec"))
        assert len(seen) == 2

    def test_subclass_matching(self):
        detector, seen = self.make()
        detector.define_event(on_create("Sec"))
        detector.observe(self.signal(class_name="Stock"))
        assert len(seen) == 1

    def test_subclass_matching_disabled(self):
        detector, seen = self.make()
        detector.define_event(on_create("Sec", include_subclasses=False))
        detector.observe(self.signal(class_name="Stock"))
        assert seen == []

    def test_attr_scoping_requires_change(self):
        detector, seen = self.make()
        detector.define_event(on_update("Stock", attrs=["price"]))
        detector.observe(self.signal(
            op="update", old={"price": 1, "symbol": "A"},
            new={"price": 1, "symbol": "B"}))
        assert seen == []
        detector.observe(self.signal(
            op="update", old={"price": 1}, new={"price": 2}))
        assert len(seen) == 1

    def test_multiple_specs_reported_each(self):
        detector, seen = self.make()
        detector.define_event(on_create("Stock"))
        detector.define_event(on_create("Sec"))
        matched = detector.observe(self.signal(class_name="Stock"))
        assert len(matched) == 2
        assert len(seen) == 2
        assert {s.spec for s in seen} == {on_create("Stock"), on_create("Sec")}

    def test_disabled_spec_suppressed(self):
        detector, seen = self.make()
        detector.define_event(on_create("Stock"))
        detector.disable_event(on_create("Stock"))
        detector.observe(self.signal())
        assert seen == []
        assert detector.stats["suppressed"] == 1


class TestExternalDetector:
    def test_signal_requires_definition(self):
        detector = ExternalEventDetector()
        with pytest.raises(EventError):
            detector.signal("nope")

    def test_signal_validates_arguments(self):
        detector = ExternalEventDetector()
        detector.define_event(external("trade", "symbol", "shares"))
        with pytest.raises(EventError):
            detector.signal("trade", {"symbol": "X"})
        with pytest.raises(EventError):
            detector.signal("trade", {"symbol": "X", "shares": 1, "extra": 2})

    def test_signal_delivers_bindings(self):
        detector = ExternalEventDetector()
        seen = []
        detector.sink = seen.append
        detector.define_event(external("trade", "symbol"))
        detector.signal("trade", {"symbol": "X"}, timestamp=4.0)
        assert seen[0].bindings()["symbol"] == "X"
        assert seen[0].timestamp == 4.0

    def test_conflicting_redefinition_rejected(self):
        detector = ExternalEventDetector()
        detector.define_event(external("e", "a"))
        with pytest.raises(EventError):
            detector.define_event(external("e", "b"))

    def test_lookup(self):
        detector = ExternalEventDetector()
        spec = external("e", "a")
        detector.define_event(spec)
        assert detector.lookup("e") == spec
        with pytest.raises(EventError):
            detector.lookup("other")
