"""Tests for rule operations (paper §2.2): create, delete, enable, disable,
fire — their locking, and their undo when the enclosing transaction aborts."""

import pytest

from repro import (
    Action,
    Attr,
    ClassDef,
    Condition,
    HiPAC,
    Query,
    Rule,
    RuleError,
    attributes,
    on_update,
)
from repro.rules.rule import RULE_CLASS


@pytest.fixture
def db():
    database = HiPAC(lock_timeout=2.0)
    database.define_class(ClassDef("Stock", attributes(
        "symbol", ("price", "number"))))
    return database


def probe_rule(events, name="probe", **kwargs):
    return Rule(
        name=name,
        event=kwargs.pop("event", on_update("Stock")),
        condition=kwargs.pop("condition", Condition.true()),
        action=Action.call(lambda ctx: events.append(name)),
        **kwargs,
    )


def touch(db):
    with db.transaction() as txn:
        oid = db.create("Stock", {"symbol": "X", "price": 1.0}, txn)
        db.update(oid, {"price": 2.0}, txn)


class TestCreate:
    def test_rule_is_a_database_object(self, db):
        events = []
        rule = db.create_rule(probe_rule(events))
        assert rule.oid is not None
        assert rule.oid.class_name == RULE_CLASS
        with db.transaction() as txn:
            stored = db.read(rule.oid, txn)
        assert stored["name"] == "probe"
        assert stored["enabled"] is True

    def test_duplicate_name_rejected(self, db):
        events = []
        db.create_rule(probe_rule(events))
        with pytest.raises(RuleError):
            db.create_rule(probe_rule(events))

    def test_event_derived_from_condition_when_omitted(self, db):
        events = []
        rule = probe_rule(events, condition=Condition.of(
            Query("Stock", Attr("price") > 5)))
        rule.event = None
        db.create_rule(rule)
        assert rule.event is not None
        with db.transaction() as txn:
            oid = db.create("Stock", {"symbol": "X", "price": 1.0}, txn)
            db.update(oid, {"price": 10.0}, txn)
        assert events  # derived event triggered the rule

    def test_create_undone_on_abort(self, db):
        events = []
        txn = db.begin()
        db.rule_manager.create_rule(probe_rule(events), txn)
        db.abort(txn)
        assert db.rule_names() == []
        touch(db)
        assert events == []
        # Detector programming was also rolled back.
        assert not db.object_manager.event_detector.is_defined(on_update("Stock"))

    def test_condition_graph_populated_on_create(self, db):
        events = []
        db.create_rule(probe_rule(events, condition=Condition.of(
            Query("Stock", Attr("price") > 5))))
        assert db.condition_evaluator.graph.node_count() == 1

    def test_rule_names_listed(self, db):
        events = []
        db.create_rule(probe_rule(events, name="b"))
        db.create_rule(probe_rule(events, name="a"))
        assert db.rule_names() == ["a", "b"]


class TestDelete:
    def test_deleted_rule_no_longer_fires(self, db):
        events = []
        db.create_rule(probe_rule(events))
        db.delete_rule("probe")
        touch(db)
        assert events == []
        assert db.rule_names() == []

    def test_delete_unknown_rejected(self, db):
        with pytest.raises(RuleError):
            db.delete_rule("nope")

    def test_delete_undone_on_abort(self, db):
        events = []
        db.create_rule(probe_rule(events))
        txn = db.begin()
        db.rule_manager.delete_rule("probe", txn)
        db.abort(txn)
        assert db.rule_names() == ["probe"]
        touch(db)
        assert events == ["probe"]

    def test_delete_removes_store_object(self, db):
        events = []
        rule = db.create_rule(probe_rule(events))
        db.delete_rule("probe")
        assert not db.store.exists(rule.oid)

    def test_shared_event_survives_one_deletion(self, db):
        events = []
        db.create_rule(probe_rule(events, name="r1"))
        db.create_rule(probe_rule(events, name="r2"))
        db.delete_rule("r1")
        touch(db)
        assert events == ["r2"]


class TestEnableDisable:
    def test_disabled_rule_does_not_fire(self, db):
        events = []
        db.create_rule(probe_rule(events))
        db.disable_rule("probe")
        touch(db)
        assert events == []

    def test_reenabled_rule_fires(self, db):
        events = []
        db.create_rule(probe_rule(events))
        db.disable_rule("probe")
        db.enable_rule("probe")
        touch(db)
        assert events == ["probe"]

    def test_disable_reflected_in_store_object(self, db):
        events = []
        rule = db.create_rule(probe_rule(events))
        db.disable_rule("probe")
        with db.transaction() as txn:
            assert db.read(rule.oid, txn)["enabled"] is False

    def test_disable_undone_on_abort(self, db):
        events = []
        db.create_rule(probe_rule(events))
        txn = db.begin()
        db.rule_manager.disable_rule("probe", txn)
        db.abort(txn)
        touch(db)
        assert events == ["probe"]

    def test_detector_disabled_only_when_no_enabled_rule_shares_event(self, db):
        events = []
        db.create_rule(probe_rule(events, name="r1"))
        db.create_rule(probe_rule(events, name="r2"))
        db.disable_rule("r1")
        touch(db)
        assert events == ["r2"]
        db.disable_rule("r2")
        assert not db.object_manager.event_detector.is_enabled(on_update("Stock"))

    def test_direct_store_update_also_disables(self, db):
        """Rules are first-class objects: updating the rule object's
        `enabled` attribute through the ordinary data API disables it."""
        events = []
        rule = db.create_rule(probe_rule(events))
        with db.transaction() as txn:
            db.update(rule.oid, {"enabled": False}, txn)
        touch(db)
        assert events == []


class TestManualFire:
    def test_fire_runs_condition_and_action(self, db):
        events = []
        db.create_rule(probe_rule(events))
        with db.transaction() as txn:
            db.fire_rule("probe", txn)
        assert events == ["probe"]

    def test_fire_respects_condition(self, db):
        events = []
        db.create_rule(probe_rule(events, condition=Condition.of(
            Query("Stock", Attr("price") > 5))))
        with db.transaction() as txn:
            db.fire_rule("probe", txn)
        assert events == []
        with db.transaction() as txn:
            db.create("Stock", {"symbol": "X", "price": 10.0}, txn)
        events.clear()
        with db.transaction() as txn:
            db.fire_rule("probe", txn)
        assert events == ["probe"]

    def test_fire_works_when_disabled(self, db):
        events = []
        db.create_rule(probe_rule(events))
        db.disable_rule("probe")
        with db.transaction() as txn:
            db.fire_rule("probe", txn)
        assert events == ["probe"]

    def test_fire_with_args_binds_them(self, db):
        seen = []
        db.create_rule(Rule(
            name="param",
            event=on_update("Stock"),
            condition=Condition.true(),
            action=Action.call(lambda ctx: seen.append(ctx.bindings.get("who"))),
        ))
        with db.transaction() as txn:
            db.fire_rule("param", txn, args={"who": "tester"})
        assert seen == ["tester"]

    def test_fire_outside_transaction(self, db):
        events = []
        db.create_rule(probe_rule(events))
        db.fire_rule("probe")  # detached host transaction
        assert events == ["probe"]


class TestRuleLocking:
    def test_firing_takes_read_lock_blocking_on_writer(self, db):
        """A transaction holding a write lock on the rule object blocks
        firings (strict 2PL on rule objects, paper §2.2)."""
        from repro.errors import TransactionAborted
        events = []
        rule = db.create_rule(probe_rule(events))
        writer = db.begin()
        db.update(rule.oid, {"description": "locked"}, writer)  # X lock held
        with pytest.raises(TransactionAborted):
            with db.transaction() as txn:
                oid = db.create("Stock", {"symbol": "X", "price": 1.0}, txn)
                db.update(oid, {"price": 2.0}, txn)  # firing blocks on rule lock
        db.abort(writer)

    def test_firing_in_same_txn_as_writer_allowed(self, db):
        """Moss rule: the firing subtransaction may read a rule its ancestor
        has write-locked."""
        events = []
        rule = db.create_rule(probe_rule(events))
        with db.transaction() as txn:
            db.update(rule.oid, {"description": "mine"}, txn)
            oid = db.create("Stock", {"symbol": "X", "price": 1.0}, txn)
            db.update(oid, {"price": 2.0}, txn)
        assert events == ["probe"]
