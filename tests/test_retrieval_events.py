"""Tests for retrieval events (read/query) — the access-control extension."""

import pytest

from repro import (
    AccessDenied,
    Action,
    ClassDef,
    Condition,
    HiPAC,
    Query,
    Rule,
    attributes,
    on_query,
    on_read,
)
from repro.declarative import AccessConstraint, install_access_constraint


@pytest.fixture
def db():
    database = HiPAC(lock_timeout=2.0)
    database.define_class(ClassDef("Secret", attributes("name", "payload")))
    return database


class TestReadEvents:
    def test_read_rule_fires_with_snapshot(self, db):
        seen = []
        db.create_rule(Rule(
            name="read-watch",
            event=on_read("Secret"),
            condition=Condition.true(),
            action=Action.call(lambda ctx: seen.append(
                (ctx.bindings["user"], ctx.bindings["new_name"]))),
        ))
        with db.transaction() as txn:
            oid = db.create("Secret", {"name": "s1", "payload": "x"}, txn)
        with db.transaction() as txn:
            db.object_manager.read(oid, txn, user="alice")
        assert seen == [("alice", "s1")]

    def test_query_rule_fires(self, db):
        seen = []
        db.create_rule(Rule(
            name="query-watch",
            event=on_query("Secret"),
            condition=Condition.true(),
            action=Action.call(lambda ctx: seen.append(
                ctx.bindings["class_name"])),
        ))
        with db.transaction() as txn:
            db.query(Query("Secret"), txn)
        assert seen == ["Secret"]

    def test_internal_reads_do_not_signal(self, db):
        """Rule-object reads (firing locks) and condition-evaluation queries
        never trigger retrieval rules — no self-feedback."""
        seen = []
        db.create_rule(Rule(
            name="read-anything",
            event=on_read(None),
            condition=Condition.true(),
            action=Action.call(lambda ctx: seen.append(1)),
        ))
        # This rule itself fires on Secret reads; its firing read-locks the
        # rule object via an internal read that must not re-trigger it.
        db.create_rule(Rule(
            name="other",
            event=on_read("Secret"),
            condition=Condition.of(Query("Secret")),  # internal query
            action=Action.call(lambda ctx: None),
        ))
        with db.transaction() as txn:
            oid = db.create("Secret", {"name": "s", "payload": "x"}, txn)
        with db.transaction() as txn:
            db.read(oid, txn)
        assert seen == [1]  # exactly the application's read


class TestReadAccessControl:
    def test_read_denied_for_unauthorized_user(self, db):
        install_access_constraint(db, AccessConstraint(
            "secret-reads", "Secret", operations=("read",),
            allowed_users=frozenset({"alice"})))
        with db.transaction() as txn:
            oid = db.create("Secret", {"name": "s", "payload": "x"}, txn)
        txn = db.begin()
        with pytest.raises(AccessDenied):
            db.object_manager.read(oid, txn, user="mallory")
        db.abort(txn)
        with db.transaction() as txn:
            assert db.object_manager.read(oid, txn, user="alice")["name"] == "s"

    def test_query_denied_for_unauthorized_user(self, db):
        install_access_constraint(db, AccessConstraint(
            "secret-queries", "Secret", operations=("query",),
            allowed_users=frozenset({"alice"})))
        txn = db.begin()
        with pytest.raises(AccessDenied):
            db.object_manager.execute_query(Query("Secret"), txn,
                                            user="mallory")
        db.abort(txn)
