"""Property-based tests: composite event automata against reference
semantics, and predicate/index equivalences."""

from hypothesis import given, settings, strategies as st

from repro.events.composite import CompositeEventDetector
from repro.events.signal import EventSignal
from repro.events.spec import Conjunction, Disjunction, Sequence, external

NAMES = ["a", "b", "c"]
streams = st.lists(st.sampled_from(NAMES), max_size=30)


def feed(detector, stream):
    seen = []
    detector.sink = seen.append
    for i, name in enumerate(stream):
        detector.observe(EventSignal(kind="external", name=name, args={},
                                     timestamp=float(i)))
    return seen


class TestDisjunctionSemantics:
    @settings(max_examples=80, deadline=None)
    @given(stream=streams)
    def test_count_equals_member_occurrences(self, stream):
        detector = CompositeEventDetector()
        detector.define_event(Disjunction(external("a"), external("b")))
        seen = feed(detector, stream)
        assert len(seen) == sum(1 for name in stream if name in ("a", "b"))


class TestSequenceSemantics:
    @settings(max_examples=80, deadline=None)
    @given(stream=streams)
    def test_matches_reference_recognizer(self, stream):
        detector = CompositeEventDetector()
        detector.define_event(Sequence(external("a"), external("b")))
        seen = feed(detector, stream)
        # Reference: scan, consume an 'a' then the next 'b'.
        expected = 0
        waiting_for_b = False
        for name in stream:
            if not waiting_for_b and name == "a":
                waiting_for_b = True
            elif waiting_for_b and name == "b":
                expected += 1
                waiting_for_b = False
        assert len(seen) == expected

    @settings(max_examples=80, deadline=None)
    @given(stream=streams)
    def test_constituents_ordered_by_time(self, stream):
        detector = CompositeEventDetector()
        detector.define_event(Sequence(external("a"), external("b"),
                                       external("c")))
        seen = feed(detector, stream)
        for occurrence in seen:
            times = [c.timestamp for c in occurrence.constituents]
            assert times == sorted(times)
            assert [c.name for c in occurrence.constituents] == ["a", "b", "c"]


class TestConjunctionSemantics:
    @settings(max_examples=80, deadline=None)
    @given(stream=streams)
    def test_count_is_min_of_member_counts_interleaved(self, stream):
        detector = CompositeEventDetector()
        detector.define_event(Conjunction(external("a"), external("b")))
        seen = feed(detector, stream)
        # Reference: rounds collect one of each; count completed rounds.
        have = {"a": 0, "b": 0}
        expected = 0
        for name in stream:
            if name in have:
                have[name] += 1
                if have["a"] >= 1 and have["b"] >= 1:
                    expected += 1
                    have = {"a": 0, "b": 0}
        assert len(seen) == expected


class TestPredicateProperties:
    values = st.one_of(st.integers(-50, 50), st.none())

    @settings(max_examples=100, deadline=None)
    @given(value=values, threshold=st.integers(-50, 50))
    def test_negation_partitions_non_null(self, value, threshold):
        from repro.objstore.predicates import Attr, Not
        attrs = {"x": value}
        pred = Attr("x") > threshold
        if value is None:
            # None never satisfies an ordering comparison; Not() therefore does.
            assert not pred.matches(attrs, {})
        else:
            assert pred.matches(attrs, {}) != Not(pred).matches(attrs, {})

    @settings(max_examples=100, deadline=None)
    @given(data=st.lists(st.tuples(st.sampled_from("abc"), st.integers(0, 5)),
                         max_size=12),
           key=st.sampled_from("abc"), val=st.integers(0, 5))
    def test_index_probe_equals_scan(self, data, key, val):
        from repro.objstore.executor import QueryExecutor
        from repro.objstore.predicates import Attr
        from repro.objstore.query import Query
        from repro.objstore.store import ObjectStore
        from repro.objstore.types import AttrType, AttributeDef, ClassDef
        store = ObjectStore()
        store.define_class(ClassDef("T", (
            AttributeDef("k", AttrType.STRING, indexed=True),
            AttributeDef("v", AttrType.INT),
        )))
        for k, v in data:
            store.insert("T", {"k": k, "v": v})
        query = Query("T", Attr("k") == key)
        fast = QueryExecutor(store, use_indexes=True).execute(query)
        slow = QueryExecutor(store, use_indexes=False).execute(query)
        assert fast.oids() == slow.oids()
