"""Tests for the HiPAC facade: wiring, auto-commit conveniences, stats."""

import pytest

from repro import (
    Action,
    ClassDef,
    Condition,
    HiPAC,
    Query,
    Rule,
    VirtualClock,
    attributes,
    on_create,
)


class TestConstruction:
    def test_bootstrap_defines_rule_class(self):
        db = HiPAC()
        assert db.store.schema.has("HiPAC::Rule")

    def test_detectors_wired_to_rule_manager(self):
        db = HiPAC()
        sink = db.rule_manager.signal_event
        assert db.object_manager.event_detector.sink == sink
        assert db.temporal_detector.sink == sink
        assert db.external_detector.sink == sink
        assert db.composite_detector.sink == sink
        assert db.transaction_manager.event_sink == db.rule_manager.transaction_event

    def test_custom_clock_used(self):
        clock = VirtualClock(100.0)
        db = HiPAC(clock=clock)
        assert db.clock.now() == 100.0

    def test_advance_time_requires_virtual_clock(self):
        from repro.clock import SystemClock
        db = HiPAC(clock=SystemClock())
        with pytest.raises(TypeError):
            db.advance_time(1.0)


class TestAutoCommitConveniences:
    def test_define_class_auto_commits(self):
        db = HiPAC()
        db.define_class(ClassDef("C", attributes("a")))
        with db.transaction() as txn:
            db.create("C", {"a": 1}, txn)

    def test_define_class_in_caller_txn(self):
        db = HiPAC()
        txn = db.begin()
        db.define_class(ClassDef("C", attributes("a")), txn)
        db.abort(txn)
        assert not db.store.schema.has("C")

    def test_drop_class(self):
        db = HiPAC()
        db.define_class(ClassDef("C"))
        db.drop_class("C")
        assert not db.store.schema.has("C")

    def test_create_rule_auto_commits(self):
        db = HiPAC()
        db.define_class(ClassDef("C", attributes("a")))
        ran = []
        db.create_rule(Rule(name="r", event=on_create("C"),
                            condition=Condition.true(),
                            action=Action.call(lambda ctx: ran.append(1))))
        with db.transaction() as txn:
            db.create("C", {"a": 1}, txn)
        assert ran == [1]

    def test_rule_ops_auto_commit(self):
        db = HiPAC()
        db.define_class(ClassDef("C", attributes("a")))
        db.create_rule(Rule(name="r", event=on_create("C"),
                            condition=Condition.true(),
                            action=Action.call(lambda ctx: None)))
        db.disable_rule("r")
        db.enable_rule("r")
        db.delete_rule("r")
        assert db.rule_names() == []

    def test_transaction_context_commits(self):
        db = HiPAC()
        db.define_class(ClassDef("C", attributes("a")))
        with db.transaction() as txn:
            db.create("C", {"a": 1}, txn)
        with db.transaction() as txn:
            assert len(db.query(Query("C"), txn)) == 1

    def test_transaction_context_aborts_on_error(self):
        db = HiPAC()
        db.define_class(ClassDef("C", attributes("a")))
        with pytest.raises(RuntimeError):
            with db.transaction() as txn:
                db.create("C", {"a": 1}, txn)
                raise RuntimeError("boom")
        with db.transaction() as txn:
            assert len(db.query(Query("C"), txn)) == 0

    def test_manual_abort_inside_context_ok(self):
        db = HiPAC()
        db.define_class(ClassDef("C", attributes("a")))
        with db.transaction() as txn:
            db.create("C", {"a": 1}, txn)
            db.abort(txn)
        with db.transaction() as txn:
            assert len(db.query(Query("C"), txn)) == 0


class TestStats:
    def test_stats_sections_present(self):
        db = HiPAC()
        stats = db.stats()
        for key in ("rules", "transactions", "locks", "objects",
                    "conditions", "condition_graph", "applications"):
            assert key in stats

    def test_stats_reflect_activity(self):
        db = HiPAC()
        db.define_class(ClassDef("C", attributes("a")))
        with db.transaction() as txn:
            db.create("C", {"a": 1}, txn)
        stats = db.stats()
        assert stats["objects"]["operations"] >= 2
        assert stats["transactions"]["top_level_committed"] >= 2


class TestWorkloadGenerators:
    def test_symbols_distinct(self):
        from repro.workloads import make_symbols
        symbols = make_symbols(100)
        assert len(set(symbols)) == 100

    def test_market_generator_deterministic(self):
        from repro.workloads import MarketDataGenerator
        a = MarketDataGenerator(["X", "Y"], seed=5)
        b = MarketDataGenerator(["X", "Y"], seed=5)
        assert [q.price for q in a.stream(20)] == \
            [q.price for q in b.stream(20)]

    def test_market_prices_bounded_below(self):
        from repro.workloads import MarketDataGenerator
        gen = MarketDataGenerator(["X"], seed=1, initial_price=2.0, step=5.0,
                                  min_price=1.0)
        assert all(q.price >= 1.0 for q in gen.stream(100))

    def test_threshold_rules_shared_fraction(self):
        from repro.workloads import make_threshold_rules
        rules = make_threshold_rules(10, shared_fraction=0.5)
        keys = {rule.condition.queries[0].canonical_key() for rule in rules}
        assert len(keys) == 6  # 1 shared + 5 distinct

    def test_make_jobs_deterministic_and_monotone_arrivals(self):
        from repro.workloads import make_jobs
        jobs = make_jobs(50, seed=3)
        arrivals = [job.arrival for job in jobs]
        assert arrivals == sorted(arrivals)
        assert all(job.deadline > job.arrival for job in jobs)
