"""Tests for the two deferral-scoping semantics (RuleManagerConfig.
defer_to_top_level): top-level commit (default, the execution-model intent)
versus the §2.1-literal per-transaction deferral."""

import pytest

from repro import (
    Action,
    AttrType,
    AttributeDef,
    ClassDef,
    Condition,
    HiPAC,
    IntegrityViolation,
    Rule,
    on_create,
    on_update,
)
from repro.declarative import DomainConstraint, install_domain_constraint
from repro.rules.manager import RuleManagerConfig


def build(defer_to_top_level):
    db = HiPAC(lock_timeout=2.0,
               config=RuleManagerConfig(defer_to_top_level=defer_to_top_level))
    db.define_class(ClassDef("Order", (
        AttributeDef("item", AttrType.STRING, required=True),
        AttributeDef("qty", AttrType.INT, default=1),
        AttributeDef("status", AttrType.STRING, default="new"),
    )))
    return db


def install_doubling_rule(db):
    """On status update, a rule action doubles qty (in a subtransaction)."""
    db.create_rule(Rule(
        name="double-qty",
        event=on_update("Order", attrs=["status"]),
        condition=Condition.true(),
        action=Action.call(lambda ctx: ctx.update(
            ctx.bindings["oid"], {"qty": ctx.bindings["new_qty"] * 2})),
    ))


class TestTopLevelDeferral:
    def test_constraint_violated_by_rule_action_aborts_at_top_commit(self):
        from repro.objstore.predicates import Attr
        db = build(defer_to_top_level=True)
        install_domain_constraint(db, DomainConstraint(
            "qty-cap", "Order", Attr("qty") <= 10))
        install_doubling_rule(db)
        with db.transaction() as txn:
            oid = db.create("Order", {"item": "x", "qty": 8}, txn)
        txn = db.begin()
        db.update(oid, {"status": "rush"}, txn)  # action doubles qty to 16
        with pytest.raises(IntegrityViolation):
            db.commit(txn)
        with db.transaction() as r:
            assert db.read(oid, r)["qty"] == 8

    def test_violation_repaired_later_in_same_top_level_passes(self):
        from repro.objstore.predicates import Attr
        db = build(defer_to_top_level=True)
        install_domain_constraint(db, DomainConstraint(
            "qty-cap", "Order", Attr("qty") <= 10))
        install_doubling_rule(db)
        with db.transaction() as txn:
            oid = db.create("Order", {"item": "x", "qty": 8}, txn)
        with db.transaction() as txn:
            db.update(oid, {"status": "rush"}, txn)   # qty -> 16 (violating)
            db.update(oid, {"qty": 5}, txn)           # repaired pre-commit
        with db.transaction() as r:
            assert db.read(oid, r)["qty"] == 5


class TestPerTransactionDeferral:
    def test_subtransaction_event_defers_to_subtransaction_commit(self):
        """With the §2.1-literal semantics, a deferred rule triggered inside
        an action subtransaction runs when *that subtransaction* commits —
        before the top-level transaction ends."""
        db = build(defer_to_top_level=False)
        order_of_events = []
        db.create_rule(Rule(
            name="spawn",
            event=on_create("Order"),
            condition=Condition.true(),
            action=Action.call(lambda ctx: ctx.update(
                ctx.bindings["oid"], {"status": "spawned"})),
        ))
        db.create_rule(Rule(
            name="deferred-observer",
            event=on_update("Order", attrs=["status"]),
            condition=Condition.true(),
            action=Action.call(
                lambda ctx: order_of_events.append("deferred-ran")),
            ec_coupling="deferred",
        ))
        txn = db.begin()
        db.create("Order", {"item": "x"}, txn)
        # The status update happened inside the `spawn` action
        # subtransaction; per-transaction deferral already drained it at
        # that subtransaction's commit:
        order_of_events.append("before-top-commit")
        db.commit(txn)
        assert order_of_events == ["deferred-ran", "before-top-commit"]

    def test_top_level_deferral_waits_for_outer_commit(self):
        db = build(defer_to_top_level=True)
        order_of_events = []
        db.create_rule(Rule(
            name="spawn",
            event=on_create("Order"),
            condition=Condition.true(),
            action=Action.call(lambda ctx: ctx.update(
                ctx.bindings["oid"], {"status": "spawned"})),
        ))
        db.create_rule(Rule(
            name="deferred-observer",
            event=on_update("Order", attrs=["status"]),
            condition=Condition.true(),
            action=Action.call(
                lambda ctx: order_of_events.append("deferred-ran")),
            ec_coupling="deferred",
        ))
        txn = db.begin()
        db.create("Order", {"item": "x"}, txn)
        order_of_events.append("before-top-commit")
        db.commit(txn)
        assert order_of_events == ["before-top-commit", "deferred-ran"]

    def test_direct_top_level_events_identical_in_both_modes(self):
        for mode in (True, False):
            db = build(defer_to_top_level=mode)
            ran = []
            db.create_rule(Rule(
                name="probe",
                event=on_create("Order"),
                condition=Condition.true(),
                action=Action.call(lambda ctx: ran.append(1)),
                ec_coupling="deferred",
            ))
            txn = db.begin()
            db.create("Order", {"item": "x"}, txn)
            assert ran == []
            db.commit(txn)
            assert ran == [1], "mode=%s" % mode
