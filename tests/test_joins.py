"""Tests for join queries (the multi-class DML extension)."""

import pytest

from repro import (
    Action,
    Attr,
    AttrType,
    AttributeDef,
    ClassDef,
    Condition,
    HiPAC,
    JoinQuery,
    OID_ATTR,
    Query,
    QueryError,
    Rule,
    on_update,
)


@pytest.fixture
def db():
    database = HiPAC(lock_timeout=2.0)
    database.define_class(ClassDef("Warehouse", (
        AttributeDef("city", AttrType.STRING, required=True, indexed=True),
    )))
    database.define_class(ClassDef("Item", (
        AttributeDef("sku", AttrType.STRING, required=True),
        AttributeDef("warehouse", AttrType.OID),
        AttributeDef("qty", AttrType.INT, default=0),
    )))
    return database


def seed(db):
    with db.transaction() as txn:
        boston = db.create("Warehouse", {"city": "Boston"}, txn)
        nyc = db.create("Warehouse", {"city": "NYC"}, txn)
        items = {
            "A": db.create("Item", {"sku": "A", "warehouse": boston,
                                    "qty": 5}, txn),
            "B": db.create("Item", {"sku": "B", "warehouse": nyc,
                                    "qty": 50}, txn),
            "C": db.create("Item", {"sku": "C", "warehouse": boston,
                                    "qty": 7}, txn),
            "D": db.create("Item", {"sku": "D", "warehouse": None,
                                    "qty": 1}, txn),
        }
    return boston, nyc, items


class TestJoinValidation:
    def test_requires_query_sides(self):
        with pytest.raises(QueryError):
            JoinQuery("Item", Query("Warehouse"), "warehouse")

    def test_requires_attrs(self):
        with pytest.raises(QueryError):
            JoinQuery(Query("Item"), Query("Warehouse"), "")

    def test_left_projection_must_keep_join_attr(self):
        with pytest.raises(QueryError):
            JoinQuery(Query("Item", project=("sku",)), Query("Warehouse"),
                      "warehouse")

    def test_canonical_key_structural(self):
        a = JoinQuery(Query("Item"), Query("Warehouse"), "warehouse")
        b = JoinQuery(Query("Item"), Query("Warehouse"), "warehouse")
        assert a.canonical_key() == b.canonical_key()


class TestOidJoin:
    def test_join_items_to_warehouses(self, db):
        boston, nyc, items = seed(db)
        join = JoinQuery(Query("Item"),
                         Query("Warehouse", Attr("city") == "Boston"),
                         "warehouse", OID_ATTR)
        with db.transaction() as txn:
            result = db.object_manager.execute_join(join, txn)
        assert sorted(result.values("sku")) == ["A", "C"]
        assert all(row.get("right.city") == "Boston" for row in result)

    def test_null_fk_never_joins(self, db):
        seed(db)
        join = JoinQuery(Query("Item"), Query("Warehouse"), "warehouse")
        with db.transaction() as txn:
            result = db.object_manager.execute_join(join, txn)
        assert sorted(result.values("sku")) == ["A", "B", "C"]

    def test_both_side_predicates_apply(self, db):
        seed(db)
        join = JoinQuery(Query("Item", Attr("qty") > 6),
                         Query("Warehouse", Attr("city") == "Boston"),
                         "warehouse")
        with db.transaction() as txn:
            result = db.object_manager.execute_join(join, txn)
        assert result.values("sku") == ["C"]

    def test_attribute_join(self, db):
        """Join on an ordinary attribute (not OID): items in cities with the
        same name as the sku — contrived but exercises the path."""
        with db.transaction() as txn:
            db.create("Warehouse", {"city": "A"}, txn)
        seed(db)
        join = JoinQuery(Query("Item"), Query("Warehouse"), "sku", "city")
        with db.transaction() as txn:
            result = db.object_manager.execute_join(join, txn)
        assert result.values("sku") == ["A"]

    def test_join_row_accessors(self, db):
        boston, nyc, items = seed(db)
        join = JoinQuery(Query("Item", Attr("sku") == "A"),
                         Query("Warehouse"), "warehouse")
        with db.transaction() as txn:
            row = db.object_manager.execute_join(join, txn).first()
        assert row.oid == items["A"]
        assert row["left.sku"] == "A"
        assert row["right.city"] == "Boston"
        assert row["city"] == "Boston"  # unprefixed falls through to right
        with pytest.raises(KeyError):
            row["nope"]

    def test_empty_join_first_raises(self, db):
        seed(db)
        join = JoinQuery(Query("Item", Attr("sku") == "ZZZ"),
                         Query("Warehouse"), "warehouse")
        with db.transaction() as txn:
            result = db.object_manager.execute_join(join, txn)
        with pytest.raises(QueryError):
            result.first()


class TestJoinInConditions:
    def test_rule_with_join_condition(self, db):
        boston, nyc, items = seed(db)
        fired = []
        db.create_rule(Rule(
            name="boston-low-stock",
            event=on_update("Item", attrs=["qty"]),
            condition=Condition.of(JoinQuery(
                Query("Item", Attr("qty") < 3),
                Query("Warehouse", Attr("city") == "Boston"),
                "warehouse")),
            action=Action.call(
                lambda ctx: fired.append(sorted(ctx.results[0].values("sku")))),
        ))
        with db.transaction() as txn:
            db.update(items["B"], {"qty": 1}, txn)   # NYC item: join empty
        assert fired == []
        with db.transaction() as txn:
            db.update(items["A"], {"qty": 2}, txn)   # Boston item below 3
        assert fired == [["A"]]

    def test_join_condition_memoized_within_round(self, db):
        boston, nyc, items = seed(db)
        join = JoinQuery(Query("Item"), Query("Warehouse"), "warehouse")
        for name in ("r1", "r2"):
            db.create_rule(Rule(
                name=name,
                event=on_update("Item", attrs=["qty"]),
                condition=Condition.of(join),
                action=Action.call(lambda ctx: None),
            ))
        before = db.condition_evaluator.stats["memo_hits"]
        with db.transaction() as txn:
            db.update(items["A"], {"qty": 9}, txn)
        assert db.condition_evaluator.stats["memo_hits"] == before + 1

    def test_join_not_materialized_in_graph(self, db):
        seed(db)
        db.create_rule(Rule(
            name="j",
            event=on_update("Item"),
            condition=Condition.of(JoinQuery(
                Query("Item"), Query("Warehouse"), "warehouse")),
            action=Action.call(lambda ctx: None),
        ))
        assert db.condition_evaluator.graph.node_count() == 0
