"""Tests for time-constrained transaction scheduling (extension)."""

import pytest

from repro.scheduler import (
    EDF,
    FIFO,
    LSF,
    DeadlineExecutor,
    Job,
    compare_policies,
    simulate,
)
from repro.workloads import make_jobs


class TestSimulator:
    def test_single_job(self):
        result = simulate([Job(0, arrival=0.0, service=1.0, deadline=2.0)], EDF)
        completion = result.completions[0]
        assert completion.start == 0.0
        assert completion.finish == 1.0
        assert not completion.missed

    def test_fifo_order(self):
        jobs = [
            Job(0, arrival=0.0, service=2.0, deadline=100.0),
            Job(1, arrival=0.1, service=1.0, deadline=2.5),
        ]
        result = simulate(jobs, FIFO)
        by_id = {c.job.job_id: c for c in result.completions}
        assert by_id[0].start == 0.0
        assert by_id[1].start == 2.0
        assert by_id[1].missed

    def test_edf_prefers_urgent(self):
        jobs = [
            Job(0, arrival=0.0, service=1.0, deadline=100.0),
            Job(1, arrival=0.0, service=1.0, deadline=2.0),
        ]
        result = simulate(jobs, EDF)
        by_id = {c.job.job_id: c for c in result.completions}
        assert by_id[1].start == 0.0
        assert not by_id[1].missed

    def test_idle_gap_respected(self):
        jobs = [
            Job(0, arrival=0.0, service=1.0, deadline=5.0),
            Job(1, arrival=10.0, service=1.0, deadline=15.0),
        ]
        result = simulate(jobs, EDF)
        assert result.completions[1].start == 10.0

    def test_multiple_servers_parallelize(self):
        jobs = [Job(i, arrival=0.0, service=1.0, deadline=1.5) for i in range(2)]
        one = simulate(jobs, FIFO, servers=1)
        two = simulate(jobs, FIFO, servers=2)
        assert one.miss_rate == 0.5
        assert two.miss_rate == 0.0

    def test_lsf_policy_runs(self):
        jobs = make_jobs(50, seed=1, load=0.8)
        result = simulate(jobs, LSF)
        assert len(result.completions) == 50

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            simulate([], "random")

    def test_bad_servers_rejected(self):
        with pytest.raises(ValueError):
            simulate([], EDF, servers=0)

    def test_all_jobs_completed_exactly_once(self):
        jobs = make_jobs(200, seed=5, load=1.1)
        result = simulate(jobs, EDF)
        assert sorted(c.job.job_id for c in result.completions) == list(range(200))

    def test_edf_beats_fifo_under_overload(self):
        """The qualitative claim of the time-constrained scheduling line of
        work: deadline-aware scheduling misses fewer deadlines than FIFO
        under load."""
        jobs = make_jobs(400, seed=13, load=0.95)
        results = compare_policies(jobs)
        assert results[EDF].miss_rate <= results[FIFO].miss_rate

    def test_metrics(self):
        jobs = [Job(0, arrival=0.0, service=2.0, deadline=1.0)]
        result = simulate(jobs, FIFO)
        assert result.miss_rate == 1.0
        assert result.mean_lateness == 1.0
        assert result.mean_response == 2.0

    def test_empty_jobs(self):
        result = simulate([], EDF)
        assert result.miss_rate == 0.0


class TestDeadlineExecutor:
    def test_executes_all_tasks(self):
        executor = DeadlineExecutor(workers=2)
        import threading
        done = []
        lock = threading.Lock()
        for i in range(20):
            executor.submit(float(i), lambda i=i: (lock.acquire(),
                                                   done.append(i),
                                                   lock.release()))
        assert executor.drain(timeout=10.0)
        assert sorted(done) == list(range(20))
        executor.shutdown()

    def test_urgent_first_single_worker(self):
        import threading
        executor = DeadlineExecutor(workers=1)
        gate = threading.Event()
        order = []
        executor.submit(0.0, gate.wait)  # occupy the worker
        import time
        time.sleep(0.05)
        executor.submit(10.0, lambda: order.append("late"))
        executor.submit(1.0, lambda: order.append("urgent"))
        gate.set()
        assert executor.drain(timeout=10.0)
        assert order == ["urgent", "late"]
        executor.shutdown()

    def test_errors_counted_not_fatal(self):
        executor = DeadlineExecutor(workers=1)
        executor.submit(0.0, lambda: 1 / 0)
        executor.submit(1.0, lambda: None)
        assert executor.drain(timeout=10.0)
        assert executor.stats["errors"] == 1
        assert executor.stats["completed"] == 1
        executor.shutdown()

    def test_submit_after_shutdown_rejected(self):
        executor = DeadlineExecutor(workers=1)
        executor.shutdown()
        with pytest.raises(RuntimeError):
            executor.submit(0.0, lambda: None)
