"""Tests for the Object Manager: operations, locking, event signalling."""

import pytest

from repro.errors import SchemaError, TransactionStateError
from repro.events.spec import on_create, on_update
from repro.objstore.manager import ObjectManager
from repro.objstore.operations import DefineClass, DropClass
from repro.objstore.predicates import Attr
from repro.objstore.query import Query
from repro.objstore.store import ObjectStore
from repro.objstore.types import AttrType, AttributeDef, ClassDef
from repro.txn.locks import LockManager, LockMode, LockResource
from repro.txn.manager import TransactionManager


@pytest.fixture
def om():
    store = ObjectStore()
    tm = TransactionManager(LockManager(default_timeout=1.0))
    manager = ObjectManager(store, tm)
    txn = tm.create_transaction()
    manager.execute_operation(DefineClass(ClassDef("Stock", (
        AttributeDef("symbol", AttrType.STRING, required=True, indexed=True),
        AttributeDef("price", AttrType.NUMBER, default=0.0),
    ))), txn)
    tm.commit_transaction(txn)
    return manager


class TestOperations:
    def test_create_returns_oid(self, om):
        txn = om.txns.create_transaction()
        oid = om.create("Stock", {"symbol": "A"}, txn)
        assert oid.class_name == "Stock"
        assert om.read(oid, txn)["symbol"] == "A"

    def test_create_without_txn_rejected(self, om):
        with pytest.raises(SchemaError):
            om.create("Stock", {"symbol": "A"})

    def test_update_and_delete(self, om):
        txn = om.txns.create_transaction()
        oid = om.create("Stock", {"symbol": "A"}, txn)
        om.update(oid, {"price": 5.0}, txn)
        assert om.read(oid, txn)["price"] == 5.0
        om.delete(oid, txn)
        assert not om.store.exists(oid)

    def test_unknown_operation_rejected(self, om):
        txn = om.txns.create_transaction()
        with pytest.raises(SchemaError):
            om.execute_operation(object(), txn)

    def test_finished_transaction_rejected(self, om):
        txn = om.txns.create_transaction()
        om.txns.commit_transaction(txn)
        with pytest.raises(TransactionStateError):
            om.create("Stock", {"symbol": "A"}, txn)

    def test_drop_class_operation(self, om):
        txn = om.txns.create_transaction()
        om.execute_operation(DefineClass(ClassDef("Tmp")), txn)
        om.execute_operation(DropClass("Tmp"), txn)
        om.txns.commit_transaction(txn)
        assert not om.store.schema.has("Tmp")


class TestLockingBehavior:
    def test_write_takes_ix_class_x_object(self, om):
        txn = om.txns.create_transaction()
        oid = om.create("Stock", {"symbol": "A"}, txn)
        assert om.txns.locks.mode_held(
            txn, LockResource.for_class("Stock")) == LockMode.IX
        assert om.txns.locks.mode_held(
            txn, LockResource.for_object(oid)) == LockMode.X

    def test_query_takes_s_on_extent(self, om):
        txn = om.txns.create_transaction()
        om.execute_query(Query("Stock"), txn)
        assert om.txns.locks.mode_held(
            txn, LockResource.for_class("Stock")) == LockMode.S

    def test_read_takes_is_class_s_object(self, om):
        writer = om.txns.create_transaction()
        oid = om.create("Stock", {"symbol": "A"}, writer)
        om.txns.commit_transaction(writer)
        reader = om.txns.create_transaction()
        om.read(oid, reader)
        assert om.txns.locks.mode_held(
            reader, LockResource.for_class("Stock")) == LockMode.IS
        assert om.txns.locks.mode_held(
            reader, LockResource.for_object(oid)) == LockMode.S

    def test_writer_blocks_reader_of_same_object(self, om):
        from repro.errors import LockTimeout
        writer = om.txns.create_transaction()
        oid = om.create("Stock", {"symbol": "A"}, writer)
        om.txns.commit_transaction(writer)
        w2 = om.txns.create_transaction()
        om.update(oid, {"price": 1.0}, w2)
        reader = om.txns.create_transaction()
        with pytest.raises(LockTimeout):
            om.read(oid, reader)

    def test_writers_of_different_objects_coexist(self, om):
        setup = om.txns.create_transaction()
        a = om.create("Stock", {"symbol": "A"}, setup)
        b = om.create("Stock", {"symbol": "B"}, setup)
        om.txns.commit_transaction(setup)
        t1 = om.txns.create_transaction()
        t2 = om.txns.create_transaction()
        om.update(a, {"price": 1.0}, t1)
        om.update(b, {"price": 2.0}, t2)  # IX + IX compatible: no blocking
        om.txns.commit_transaction(t1)
        om.txns.commit_transaction(t2)

    def test_query_blocks_on_active_writer(self, om):
        from repro.errors import LockTimeout
        setup = om.txns.create_transaction()
        a = om.create("Stock", {"symbol": "A"}, setup)
        om.txns.commit_transaction(setup)
        writer = om.txns.create_transaction()
        om.update(a, {"price": 1.0}, writer)
        reader = om.txns.create_transaction()
        with pytest.raises(LockTimeout):
            om.execute_query(Query("Stock"), reader)


class TestUndoIntegration:
    def test_abort_undoes_operations(self, om):
        txn = om.txns.create_transaction()
        oid = om.create("Stock", {"symbol": "A"}, txn)
        om.update(oid, {"price": 3.0}, txn)
        om.txns.abort_transaction(txn)
        assert om.store.extent("Stock") == []

    def test_abort_restores_deleted(self, om):
        t1 = om.txns.create_transaction()
        oid = om.create("Stock", {"symbol": "A", "price": 2.0}, t1)
        om.txns.commit_transaction(t1)
        t2 = om.txns.create_transaction()
        om.delete(oid, t2)
        om.txns.abort_transaction(t2)
        assert om.store.get(oid).attrs["price"] == 2.0

    def test_abort_undoes_ddl(self, om):
        txn = om.txns.create_transaction()
        om.execute_operation(DefineClass(ClassDef("Tmp")), txn)
        om.txns.abort_transaction(txn)
        assert not om.store.schema.has("Tmp")


class TestEventReporting:
    def test_events_reported_when_programmed(self, om):
        seen = []
        om.event_detector.sink = seen.append
        om.event_detector.define_event(on_update("Stock"))
        txn = om.txns.create_transaction()
        oid = om.create("Stock", {"symbol": "A"}, txn)  # create: not programmed
        om.update(oid, {"price": 1.0}, txn)
        om.txns.commit_transaction(txn)
        assert len(seen) == 1
        signal = seen[0]
        assert signal.op == "update"
        assert signal.oid == oid
        assert signal.old_attrs["price"] == 0.0
        assert signal.new_attrs["price"] == 1.0
        assert signal.txn is txn

    def test_signal_carries_user(self, om):
        seen = []
        om.event_detector.sink = seen.append
        om.event_detector.define_event(on_create("Stock"))
        txn = om.txns.create_transaction()
        om.create("Stock", {"symbol": "A"}, txn, user="alice")
        assert seen[0].user == "alice"

    def test_delta_listeners_called(self, om):
        deltas = []
        om.add_delta_listener(lambda txn, delta: deltas.append(delta.kind))
        txn = om.txns.create_transaction()
        oid = om.create("Stock", {"symbol": "A"}, txn)
        om.delete(oid, txn)
        assert deltas == ["create", "delete"]

    def test_plan_exposed(self, om):
        plan = om.query_plan(Query("Stock", Attr("symbol") == "A"))
        assert plan.kind == "index-probe"
