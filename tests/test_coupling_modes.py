"""Tests for the execution model: all nine E-C x C-A coupling combinations
(paper §2.1, §3.2, §6.2)."""

import pytest

from repro import (
    Action,
    Attr,
    ClassDef,
    Condition,
    HiPAC,
    Query,
    Rule,
    attributes,
    every,
    external,
    on_update,
)
from repro.rules.coupling import DEFERRED, IMMEDIATE, SEPARATE, all_combinations


@pytest.fixture
def db():
    database = HiPAC(lock_timeout=2.0)
    database.define_class(ClassDef("Stock", attributes(
        "symbol", ("price", "number"))))
    return database


def install(db, events, ec, ca, condition=None):
    """Install a rule recording (phase, txn_id) into ``events``."""
    rule = Rule(
        name="probe",
        event=on_update("Stock"),
        condition=condition or Condition.true(),
        action=Action.call(lambda ctx: events.append(("action", ctx.txn.txn_id))),
        ec_coupling=ec,
        ca_coupling=ca,
    )
    db.create_rule(rule)
    return rule


def trigger(db, events):
    """Create + update a stock; record operation/commit boundary markers."""
    txn = db.begin()
    oid = db.create("Stock", {"symbol": "X", "price": 1.0}, txn)
    db.update(oid, {"price": 2.0}, txn)
    events.append(("after-update", txn.txn_id))
    db.commit(txn)
    events.append(("after-commit", txn.txn_id))
    db.drain()
    return txn


def phase_index(events, phase):
    return [i for i, e in enumerate(events) if e[0] == phase]


@pytest.mark.parametrize("ec,ca", all_combinations())
def test_every_combination_executes_action(db, ec, ca):
    events = []
    install(db, events, ec, ca)
    trigger(db, events)
    assert phase_index(events, "action"), "action never ran for %s/%s" % (ec, ca)


class TestImmediateImmediate:
    def test_action_preempts_operation(self, db):
        events = []
        install(db, events, IMMEDIATE, IMMEDIATE)
        trigger(db, events)
        assert phase_index(events, "action")[0] < phase_index(events, "after-update")[0]

    def test_action_runs_in_subtransaction_of_trigger(self, db):
        firing = None
        events = []
        install(db, events, IMMEDIATE, IMMEDIATE)
        txn = trigger(db, events)
        firing = db.firing_log().for_rule("probe")[0]
        assert firing.triggering_txn == txn.txn_id
        assert firing.condition_txn is not None
        assert firing.action_txn is not None
        assert firing.condition_txn != firing.action_txn

    def test_transaction_tree_contains_firing_txns(self, db):
        events = []
        install(db, events, IMMEDIATE, IMMEDIATE)
        txn = trigger(db, events)
        # top + (cond+act per update event) — create event also triggers? No:
        # event is on_update, so one condition and one action subtransaction.
        assert txn.tree_size() == 3


class TestImmediateDeferred:
    def test_action_waits_for_commit(self, db):
        events = []
        install(db, events, IMMEDIATE, DEFERRED)
        trigger(db, events)
        action = phase_index(events, "action")[0]
        assert phase_index(events, "after-update")[0] < action
        assert action < phase_index(events, "after-commit")[0]


class TestImmediateSeparate:
    def test_action_in_new_top_level(self, db):
        events = []
        install(db, events, IMMEDIATE, SEPARATE)
        txn = trigger(db, events)
        firing = db.firing_log().for_rule("probe")[0]
        assert firing.separate_thread
        action_txn = firing.action_txn
        assert action_txn is not None
        assert action_txn != txn.txn_id


class TestDeferredFamily:
    def test_deferred_condition_waits_for_commit(self, db):
        events = []
        install(db, events, DEFERRED, IMMEDIATE)
        trigger(db, events)
        action = phase_index(events, "action")[0]
        assert phase_index(events, "after-update")[0] < action
        assert action < phase_index(events, "after-commit")[0]

    def test_deferred_deferred(self, db):
        events = []
        install(db, events, DEFERRED, DEFERRED)
        trigger(db, events)
        action = phase_index(events, "action")[0]
        assert action < phase_index(events, "after-commit")[0]

    def test_deferred_sees_final_state(self, db):
        """A deferred condition evaluates against the transaction's final
        state, not the state at event time."""
        seen = []
        rule = Rule(
            name="probe",
            event=on_update("Stock", attrs=["price"]),
            condition=Condition.of(Query("Stock", Attr("price") > 100)),
            action=Action.call(
                lambda ctx: seen.append(ctx.results[0].values("price"))),
            ec_coupling=DEFERRED,
        )
        db.create_rule(rule)
        with db.transaction() as txn:
            oid = db.create("Stock", {"symbol": "X", "price": 1.0}, txn)
            db.update(oid, {"price": 150.0}, txn)   # event: queues deferred
            db.update(oid, {"price": 120.0}, txn)   # final state
        # two deferred firings (two price updates), both see 120.0
        assert seen == [[120.0], [120.0]]

    def test_deferred_not_run_when_condition_false_at_commit(self, db):
        executed = []
        rule = Rule(
            name="probe",
            event=on_update("Stock", attrs=["price"]),
            condition=Condition.of(Query("Stock", Attr("price") > 100)),
            action=Action.call(lambda ctx: executed.append(True)),
            ec_coupling=DEFERRED,
        )
        db.create_rule(rule)
        with db.transaction() as txn:
            oid = db.create("Stock", {"symbol": "X", "price": 1.0}, txn)
            db.update(oid, {"price": 150.0}, txn)
            db.update(oid, {"price": 50.0}, txn)    # back below threshold
        assert executed == []

    def test_abort_discards_deferred_firings(self, db):
        events = []
        install(db, events, DEFERRED, IMMEDIATE)
        txn = db.begin()
        oid = db.create("Stock", {"symbol": "X", "price": 1.0}, txn)
        db.update(oid, {"price": 2.0}, txn)
        db.abort(txn)
        assert phase_index(events, "action") == []


class TestSeparateFamily:
    def test_separate_runs_in_own_top_level(self, db):
        events = []
        install(db, events, SEPARATE, IMMEDIATE)
        txn = trigger(db, events)
        firing = db.firing_log().for_rule("probe")[0]
        assert firing.separate_thread
        assert firing.condition_txn != txn.txn_id

    def test_separate_separate_uses_two_top_levels(self, db):
        events = []
        install(db, events, SEPARATE, SEPARATE)
        trigger(db, events)
        firing = db.firing_log().for_rule("probe")[0]
        assert firing.condition_txn != firing.action_txn

    def test_separate_deferred_runs_at_separate_commit(self, db):
        events = []
        install(db, events, SEPARATE, DEFERRED)
        trigger(db, events)
        assert phase_index(events, "action")

    def test_separate_launched_even_if_trigger_aborts(self, db):
        events = []
        install(db, events, SEPARATE, IMMEDIATE)
        txn = db.begin()
        oid = db.create("Stock", {"symbol": "X", "price": 1.0}, txn)
        db.update(oid, {"price": 2.0}, txn)
        db.abort(txn)
        db.drain()
        # Causally independent separate firing ran despite the abort.
        assert phase_index(events, "action")

    def test_dependent_separate_discarded_on_abort(self, db):
        events = []
        rule = Rule(
            name="probe",
            event=on_update("Stock"),
            condition=Condition.true(),
            action=Action.call(lambda ctx: events.append("action")),
            ec_coupling=SEPARATE,
            separate_dependent=True,
        )
        db.create_rule(rule)
        txn = db.begin()
        oid = db.create("Stock", {"symbol": "X", "price": 1.0}, txn)
        db.update(oid, {"price": 2.0}, txn)
        db.abort(txn)
        db.drain()
        assert events == []

    def test_dependent_separate_runs_after_commit(self, db):
        events = []
        rule = Rule(
            name="probe",
            event=on_update("Stock"),
            condition=Condition.true(),
            action=Action.call(lambda ctx: events.append("action")),
            ec_coupling=SEPARATE,
            separate_dependent=True,
        )
        db.create_rule(rule)
        txn = db.begin()
        oid = db.create("Stock", {"symbol": "X", "price": 1.0}, txn)
        db.update(oid, {"price": 2.0}, txn)
        db.commit(txn)
        db.drain()
        assert events == ["action"]


class TestDetachedEvents:
    def test_temporal_event_hosts_immediate_in_fresh_txn(self, db):
        ran = []
        db.create_rule(Rule(
            name="tick",
            event=every(5.0),
            condition=Condition.true(),
            action=Action.call(lambda ctx: ran.append(ctx.txn.top_level().label)),
            ec_coupling=IMMEDIATE,
        ))
        db.advance_time(5.0)
        assert ran == ["detached-firing"]

    def test_external_event_outside_txn(self, db):
        ran = []
        db.define_event("ping")
        db.create_rule(Rule(
            name="on-ping",
            event=external("ping"),
            condition=Condition.true(),
            action=Action.call(lambda ctx: ran.append(True)),
            ec_coupling=DEFERRED,  # escalated to detached immediate
        ))
        db.signal_event("ping")
        assert ran == [True]
