"""Tests for the declarative layer: constraints, referential integrity,
derived data, alerters, access control — all compiled to ECA rules."""

import pytest

from repro import (
    AccessDenied,
    AttrType,
    Attr,
    AttributeDef,
    ClassDef,
    HiPAC,
    IntegrityViolation,
    Query,
    on_update,
)
from repro.declarative import (
    CASCADE,
    RESTRICT,
    SET_NULL,
    AccessConstraint,
    Alerter,
    DerivedAttribute,
    DomainConstraint,
    ReferentialConstraint,
    install_access_constraint,
    install_alerter,
    install_derived_attribute,
    install_domain_constraint,
    install_referential_constraint,
)
from repro.conditions.condition import Condition


@pytest.fixture
def db():
    database = HiPAC(lock_timeout=2.0)
    database.define_class(ClassDef("Account", (
        AttributeDef("owner", AttrType.STRING, required=True),
        AttributeDef("balance", AttrType.NUMBER, default=0.0),
    )))
    return database


class TestDomainConstraint:
    def constraint(self, immediate=False):
        return DomainConstraint("non-negative-balance", "Account",
                                Attr("balance") >= 0, immediate=immediate)

    def test_deferred_violation_aborts_commit(self, db):
        install_domain_constraint(db, self.constraint())
        txn = db.begin()
        db.create("Account", {"owner": "a", "balance": -5.0}, txn)
        with pytest.raises(IntegrityViolation):
            db.commit(txn)
        with db.transaction() as r:
            assert len(db.query(Query("Account"), r)) == 0

    def test_transient_violation_fixed_before_commit_ok(self, db):
        install_domain_constraint(db, self.constraint())
        with db.transaction() as txn:
            oid = db.create("Account", {"owner": "a", "balance": -5.0}, txn)
            db.update(oid, {"balance": 10.0}, txn)
        with db.transaction() as r:
            assert len(db.query(Query("Account"), r)) == 1

    def test_immediate_violation_fails_operation(self, db):
        install_domain_constraint(db, self.constraint(immediate=True))
        txn = db.begin()
        with pytest.raises(IntegrityViolation):
            db.create("Account", {"owner": "a", "balance": -5.0}, txn)
        db.abort(txn)

    def test_valid_data_commits(self, db):
        install_domain_constraint(db, self.constraint())
        with db.transaction() as txn:
            db.create("Account", {"owner": "a", "balance": 5.0}, txn)

    def test_repair_contingency(self, db):
        def clamp(ctx, violations):
            for row in violations:
                ctx.update(row.oid, {"balance": 0.0})

        install_domain_constraint(db, DomainConstraint(
            "clamp-balance", "Account", Attr("balance") >= 0, repair=clamp))
        with db.transaction() as txn:
            oid = db.create("Account", {"owner": "a", "balance": -5.0}, txn)
        with db.transaction() as r:
            assert db.read(oid, r)["balance"] == 0.0


class TestReferentialConstraint:
    @pytest.fixture
    def rdb(self):
        database = HiPAC(lock_timeout=2.0)
        database.define_class(ClassDef("Dept", (
            AttributeDef("name", AttrType.STRING, required=True),
        )))
        database.define_class(ClassDef("Emp", (
            AttributeDef("name", AttrType.STRING, required=True),
            AttributeDef("dept", AttrType.OID),
        )))
        return database

    def seed(self, rdb):
        with rdb.transaction() as txn:
            dept = rdb.create("Dept", {"name": "eng"}, txn)
            emp = rdb.create("Emp", {"name": "bob", "dept": dept}, txn)
        return dept, emp

    def test_restrict_blocks_delete(self, rdb):
        install_referential_constraint(rdb, ReferentialConstraint(
            "emp-dept", "Emp", "dept", "Dept", on_delete=RESTRICT))
        dept, emp = self.seed(rdb)
        txn = rdb.begin()
        with pytest.raises(IntegrityViolation):
            rdb.delete(dept, txn)
        rdb.abort(txn)
        with rdb.transaction() as r:
            assert rdb.store.exists(dept)

    def test_restrict_allows_delete_without_references(self, rdb):
        install_referential_constraint(rdb, ReferentialConstraint(
            "emp-dept", "Emp", "dept", "Dept", on_delete=RESTRICT))
        dept, emp = self.seed(rdb)
        with rdb.transaction() as txn:
            rdb.delete(emp, txn)
            rdb.delete(dept, txn)

    def test_cascade_deletes_references(self, rdb):
        install_referential_constraint(rdb, ReferentialConstraint(
            "emp-dept", "Emp", "dept", "Dept", on_delete=CASCADE))
        dept, emp = self.seed(rdb)
        with rdb.transaction() as txn:
            rdb.delete(dept, txn)
        assert not rdb.store.exists(emp)

    def test_set_null_clears_references(self, rdb):
        install_referential_constraint(rdb, ReferentialConstraint(
            "emp-dept", "Emp", "dept", "Dept", on_delete=SET_NULL))
        dept, emp = self.seed(rdb)
        with rdb.transaction() as txn:
            rdb.delete(dept, txn)
        with rdb.transaction() as r:
            assert rdb.read(emp, r)["dept"] is None

    def test_dangling_insert_rejected(self, rdb):
        install_referential_constraint(rdb, ReferentialConstraint(
            "emp-dept", "Emp", "dept", "Dept"))
        dept, _ = self.seed(rdb)
        with rdb.transaction() as txn:
            rdb.delete(
                rdb.query(Query("Emp"), txn).first().oid, txn)
            rdb.delete(dept, txn)
        txn = rdb.begin()
        with pytest.raises(IntegrityViolation):
            rdb.create("Emp", {"name": "eve", "dept": dept}, txn)
        rdb.abort(txn)

    def test_null_fk_allowed(self, rdb):
        install_referential_constraint(rdb, ReferentialConstraint(
            "emp-dept", "Emp", "dept", "Dept"))
        with rdb.transaction() as txn:
            rdb.create("Emp", {"name": "floater", "dept": None}, txn)

    def test_unknown_action_rejected(self):
        with pytest.raises(IntegrityViolation):
            ReferentialConstraint("x", "Emp", "dept", "Dept",
                                  on_delete="explode")


class TestDerivedAttribute:
    @pytest.fixture
    def ddb(self):
        database = HiPAC(lock_timeout=2.0)
        database.define_class(ClassDef("Portfolio", (
            AttributeDef("owner", AttrType.STRING, required=True),
            AttributeDef("total", AttrType.NUMBER, default=0.0),
        )))
        database.define_class(ClassDef("Holding", (
            AttributeDef("portfolio", AttrType.OID),
            AttributeDef("value", AttrType.NUMBER, default=0.0),
        )))
        install_derived_attribute(database, DerivedAttribute(
            "portfolio-total", "Portfolio", "total",
            "Holding", "portfolio", "value", aggregate="sum"))
        return database

    def test_sum_maintained_on_create(self, ddb):
        with ddb.transaction() as txn:
            p = ddb.create("Portfolio", {"owner": "a"}, txn)
            ddb.create("Holding", {"portfolio": p, "value": 10.0}, txn)
            ddb.create("Holding", {"portfolio": p, "value": 5.0}, txn)
        with ddb.transaction() as r:
            assert ddb.read(p, r)["total"] == 15.0

    def test_sum_maintained_on_update_and_delete(self, ddb):
        with ddb.transaction() as txn:
            p = ddb.create("Portfolio", {"owner": "a"}, txn)
            h = ddb.create("Holding", {"portfolio": p, "value": 10.0}, txn)
        with ddb.transaction() as txn:
            ddb.update(h, {"value": 4.0}, txn)
        with ddb.transaction() as r:
            assert ddb.read(p, r)["total"] == 4.0
        with ddb.transaction() as txn:
            ddb.delete(h, txn)
        with ddb.transaction() as r:
            assert ddb.read(p, r)["total"] == 0

    def test_relink_moves_contribution(self, ddb):
        with ddb.transaction() as txn:
            p1 = ddb.create("Portfolio", {"owner": "a"}, txn)
            p2 = ddb.create("Portfolio", {"owner": "b"}, txn)
            h = ddb.create("Holding", {"portfolio": p1, "value": 7.0}, txn)
        with ddb.transaction() as txn:
            ddb.update(h, {"portfolio": p2}, txn)
        with ddb.transaction() as r:
            assert ddb.read(p1, r)["total"] == 0
            assert ddb.read(p2, r)["total"] == 7.0

    def test_count_aggregate(self):
        database = HiPAC(lock_timeout=2.0)
        database.define_class(ClassDef("P", (
            AttributeDef("n", AttrType.INT, default=0),)))
        database.define_class(ClassDef("H", (
            AttributeDef("p", AttrType.OID),)))
        install_derived_attribute(database, DerivedAttribute(
            "cnt", "P", "n", "H", "p", "p", aggregate="count"))
        with database.transaction() as txn:
            p = database.create("P", {}, txn)
            database.create("H", {"p": p}, txn)
            database.create("H", {"p": p}, txn)
        with database.transaction() as r:
            assert database.read(p, r)["n"] == 2

    def test_unknown_aggregate_rejected(self):
        from repro.errors import RuleError
        with pytest.raises(RuleError):
            DerivedAttribute("x", "P", "n", "H", "p", "v",
                             aggregate="median").to_rule()


class TestAlerter:
    def test_callable_notification(self, db):
        alerts = []
        install_alerter(db, Alerter(
            "low-balance",
            event=on_update("Account", attrs=["balance"]),
            condition=Condition.of(Query("Account", Attr("balance") < 10)),
            notify=lambda ctx: alerts.append(ctx.results[0].values("balance")),
            coupling="immediate",
        ))
        with db.transaction() as txn:
            oid = db.create("Account", {"owner": "a", "balance": 100.0}, txn)
        with db.transaction() as txn:
            db.update(oid, {"balance": 5.0}, txn)
        assert alerts == [[5.0]]

    def test_application_notification(self, db):
        app = db.application("pager")
        pages = []
        app.operations.register("page", lambda alerter, bindings: pages.append(alerter))
        install_alerter(db, Alerter(
            "any-change",
            event=on_update("Account"),
            condition=Condition.true(),
            notify=("pager", "page"),
            coupling="immediate",
        ))
        with db.transaction() as txn:
            oid = db.create("Account", {"owner": "a"}, txn)
            db.update(oid, {"balance": 1.0}, txn)
        assert pages == ["any-change"]


class TestAccessConstraint:
    def test_unauthorized_user_denied(self, db):
        install_access_constraint(db, AccessConstraint(
            "only-alice", "Account", allowed_users=frozenset({"alice"})))
        txn = db.begin()
        with pytest.raises(AccessDenied):
            db.object_manager.create("Account", {"owner": "x"}, txn, user="bob")
        db.abort(txn)

    def test_authorized_user_allowed(self, db):
        install_access_constraint(db, AccessConstraint(
            "only-alice", "Account", allowed_users=frozenset({"alice"})))
        with db.transaction() as txn:
            db.object_manager.create("Account", {"owner": "x"}, txn, user="alice")

    def test_custom_check(self, db):
        install_access_constraint(db, AccessConstraint(
            "even-balances", "Account", operations=("update",),
            check=lambda user, bindings: user.startswith("admin")))
        with db.transaction() as txn:
            oid = db.object_manager.create("Account", {"owner": "x"}, txn,
                                           user="admin1")
        txn = db.begin()
        with pytest.raises(AccessDenied):
            db.object_manager.update(oid, {"balance": 1.0}, txn, user="bob")
        db.abort(txn)
