"""Property-based end-to-end test: with rules firing (including cascades),
aborting the top-level transaction still restores the exact prior state —
store contents, indexes, and condition-graph memories."""

from hypothesis import given, settings, strategies as st

from repro import (
    Action,
    Attr,
    AttrType,
    AttributeDef,
    ClassDef,
    Condition,
    HiPAC,
    Query,
    Rule,
    on_create,
    on_update,
)


def build_db():
    db = HiPAC(lock_timeout=2.0)
    db.define_class(ClassDef("Item", (
        AttributeDef("name", AttrType.STRING, required=True, indexed=True),
        AttributeDef("qty", AttrType.INT, default=0),
    )))
    db.define_class(ClassDef("Audit", (
        AttributeDef("note", AttrType.STRING, default=""),
    )))
    # Cascade: every Item create spawns an Audit row; every qty update
    # touching > 10 spawns another.
    db.create_rule(Rule(
        name="audit-create",
        event=on_create("Item"),
        condition=Condition.true(),
        action=Action.call(lambda ctx: ctx.create(
            "Audit", {"note": "created"})),
    ))
    db.create_rule(Rule(
        name="audit-big",
        event=on_update("Item", attrs=["qty"]),
        condition=Condition(
            guard=lambda bindings, results: bindings.get("new_qty", 0) > 10),
        action=Action.call(lambda ctx: ctx.create(
            "Audit", {"note": "big"})),
    ))
    # A materialized watcher so the condition graph has a memory to check.
    db.create_rule(Rule(
        name="watch-big",
        event=on_update("Item", attrs=["qty"]),
        condition=Condition.of(Query("Item", Attr("qty") > 10)),
        action=Action.call(lambda ctx: None),
    ))
    # A deferred observer exercises the commit path too.
    db.create_rule(Rule(
        name="deferred-observer",
        event=on_update("Item", attrs=["qty"]),
        condition=Condition.true(),
        action=Action.call(lambda ctx: None),
        ec_coupling="deferred",
    ))
    return db


ops = st.lists(
    st.one_of(
        st.tuples(st.just("create"), st.text(alphabet="ab", min_size=1,
                                             max_size=2),
                  st.integers(0, 20)),
        st.tuples(st.just("update"), st.integers(0, 5), st.integers(0, 20)),
        st.tuples(st.just("delete"), st.integers(0, 5)),
    ),
    max_size=8,
)


def apply_ops(db, txn, steps, live):
    for step in steps:
        existing = [oid for oid in live if db.store.exists(oid)]
        if step[0] == "create":
            live.append(db.create("Item", {"name": step[1],
                                           "qty": step[2]}, txn))
        elif step[0] == "update" and existing:
            db.update(existing[step[1] % len(existing)],
                      {"qty": step[2]}, txn)
        elif step[0] == "delete" and existing:
            db.delete(existing[step[1] % len(existing)], txn)


def graph_memory(db):
    node = db.condition_evaluator.graph.node_for(Query("Item", Attr("qty") > 10))
    return frozenset(node.memory) if node is not None else frozenset()


class TestAbortWithActiveRules:
    @settings(max_examples=50, deadline=None)
    @given(setup=ops, doomed=ops)
    def test_abort_undoes_rule_effects_too(self, setup, doomed):
        db = build_db()
        live = []
        with db.transaction() as txn:
            apply_ops(db, txn, setup, live)
        before_state = db.store.snapshot_state()
        before_memory = graph_memory(db)

        txn = db.begin()
        apply_ops(db, txn, doomed, live)
        db.abort(txn)

        assert db.store.snapshot_state() == before_state
        assert graph_memory(db) == before_memory
        assert db.locks.resource_count() == 0
        assert db.transaction_manager.live_transactions() == []

    @settings(max_examples=50, deadline=None)
    @given(steps=ops)
    def test_committed_run_is_internally_consistent(self, steps):
        """After a committed run, audits equal the rule-visible events:
        one per created item (including re-creations via undo paths is
        impossible here), one per qty update landing above 10."""
        db = build_db()
        live = []
        expected_audits = 0
        with db.transaction() as txn:
            for step in steps:
                existing = [oid for oid in live if db.store.exists(oid)]
                if step[0] == "create":
                    live.append(db.create(
                        "Item", {"name": step[1], "qty": step[2]}, txn))
                    expected_audits += 1
                elif step[0] == "update" and existing:
                    target = existing[step[1] % len(existing)]
                    old = db.store.get(target).attrs["qty"]
                    db.update(target, {"qty": step[2]}, txn)
                    if step[2] != old and step[2] > 10:
                        expected_audits += 1
                elif step[0] == "delete" and existing:
                    db.delete(existing[step[1] % len(existing)], txn)
        with db.transaction() as r:
            audits = db.query(Query("Audit"), r)
        assert len(audits) == expected_audits
