"""Tests for deadline-aware dispatch of separate-coupling firings (the
[BUC88] time-constrained scheduling integration)."""

import threading
import time


from repro import (
    Action,
    ClassDef,
    Condition,
    HiPAC,
    Rule,
    attributes,
    on_update,
)
from repro.rules.manager import RuleManagerConfig
from repro.scheduler import DeadlineExecutor


def build(executor):
    config = RuleManagerConfig(deadline_executor=executor)
    db = HiPAC(lock_timeout=5.0, config=config)
    db.define_class(ClassDef("Stock", attributes(
        "symbol", ("price", "number"))))
    return db


class TestDeadlineDispatch:
    def test_separate_firings_run_via_executor(self):
        executor = DeadlineExecutor(workers=2)
        db = build(executor)
        ran = []
        lock = threading.Lock()
        db.create_rule(Rule(
            name="r",
            event=on_update("Stock", attrs=["price"]),
            condition=Condition.true(),
            action=Action.call(
                lambda ctx: (lock.acquire(), ran.append(1), lock.release())),
            ec_coupling="separate",
            deadline=5.0,
        ))
        with db.transaction() as txn:
            oid = db.create("Stock", {"symbol": "A", "price": 1.0}, txn)
        for i in range(10):
            with db.transaction() as txn:
                db.update(oid, {"price": float(i + 2)}, txn)
        assert db.drain(timeout=30.0)
        assert len(ran) == 10
        assert executor.stats["submitted"] == 10
        executor.shutdown()

    def test_urgent_rule_dispatched_first(self):
        executor = DeadlineExecutor(workers=1)
        db = build(executor)
        order = []
        gate = threading.Event()
        # Occupy the single worker so both firings queue.
        executor.submit(0.0, gate.wait)

        def make(name, deadline):
            db.create_rule(Rule(
                name=name,
                event=on_update("Stock", attrs=["price"]),
                condition=Condition.true(),
                action=Action.call(lambda ctx, n=name: order.append(n)),
                ec_coupling="separate",
                deadline=deadline,
                # alphabetical firing order would put 'relaxed' first;
                # deadlines must override it at dispatch
                priority=0,
            ))

        make("a-relaxed", deadline=100.0)
        make("b-urgent", deadline=1.0)
        with db.transaction() as txn:
            oid = db.create("Stock", {"symbol": "A", "price": 1.0}, txn)
        with db.transaction() as txn:
            db.update(oid, {"price": 2.0}, txn)
        time.sleep(0.1)  # both submissions queued behind the gate
        gate.set()
        assert db.drain(timeout=30.0)
        assert order == ["b-urgent", "a-relaxed"]
        executor.shutdown()

    def test_rules_without_deadline_run_last(self):
        executor = DeadlineExecutor(workers=1)
        db = build(executor)
        order = []
        gate = threading.Event()
        executor.submit(0.0, gate.wait)
        db.create_rule(Rule(
            name="a-nodeadline",
            event=on_update("Stock", attrs=["price"]),
            condition=Condition.true(),
            action=Action.call(lambda ctx: order.append("none")),
            ec_coupling="separate",
        ))
        db.create_rule(Rule(
            name="b-deadline",
            event=on_update("Stock", attrs=["price"]),
            condition=Condition.true(),
            action=Action.call(lambda ctx: order.append("deadline")),
            ec_coupling="separate",
            deadline=2.0,
        ))
        with db.transaction() as txn:
            oid = db.create("Stock", {"symbol": "A", "price": 1.0}, txn)
        with db.transaction() as txn:
            db.update(oid, {"price": 2.0}, txn)
        time.sleep(0.1)
        gate.set()
        assert db.drain(timeout=30.0)
        assert order == ["deadline", "none"]
        executor.shutdown()

    def test_without_executor_threads_used(self):
        db = HiPAC(lock_timeout=5.0)
        db.define_class(ClassDef("Stock", attributes(
            "symbol", ("price", "number"))))
        ran = []
        db.create_rule(Rule(
            name="r",
            event=on_update("Stock", attrs=["price"]),
            condition=Condition.true(),
            action=Action.call(lambda ctx: ran.append(1)),
            ec_coupling="separate",
            deadline=1.0,  # ignored without an executor
        ))
        with db.transaction() as txn:
            oid = db.create("Stock", {"symbol": "A", "price": 1.0}, txn)
        with db.transaction() as txn:
            db.update(oid, {"price": 2.0}, txn)
        assert db.drain(timeout=10.0)
        assert ran == [1]
