"""Trace-validated reproductions of the paper's Section 6 walkthroughs and
Figures 4.1/5.1.

The system records every inter-component call; these tests check the
recorded protocol against the paper's prose:

* §6.1 rule creation,
* §6.2 event signal processing,
* §6.3 transaction commit processing,
* Figure 4.1 (the four-module application interface),
* Figure 5.1 (the component graph: no call crosses an edge the figure
  doesn't draw).
"""

import pytest

from repro import (
    Action,
    Attr,
    ClassDef,
    Condition,
    HiPAC,
    Query,
    Rule,
    attributes,
    external,
    on_update,
)
from repro.core.tracing import (
    APPLICATION,
    CONDITION_EVALUATOR,
    EVENT_DETECTOR,
    OBJECT_MANAGER,
    RULE_MANAGER,
    TRANSACTION_MANAGER,
    figure_5_1_edges,
)
from repro.rules.actions import RequestStep


@pytest.fixture
def db():
    database = HiPAC(lock_timeout=2.0)
    database.define_class(ClassDef("Stock", attributes(
        "symbol", ("price", "number"))))
    return database


def probe_rule(name="probe", **kwargs):
    return Rule(
        name=name,
        event=kwargs.pop("event", on_update("Stock")),
        condition=kwargs.pop(
            "condition", Condition.of(Query("Stock", Attr("price") > 0))),
        action=kwargs.pop("action", Action.call(lambda ctx: None)),
        **kwargs,
    )


class TestSection61RuleCreation:
    """§6.1: "The request is handled by the Object Manager.  The Object
    Manager creates the rule object ... and signals the create rule event to
    the Rule Manager. ... First, the Rule Manager issues an add rule request
    to the Condition [Evaluator].  Then it issues define event requests to
    the appropriate Event Detectors." """

    def test_creation_protocol_order(self, db):
        db.tracer.start()
        db.create_rule(probe_rule())
        trace = db.tracer.stop()
        assert trace.subsequence([
            (APPLICATION, OBJECT_MANAGER, "execute_operation"),
            (OBJECT_MANAGER, RULE_MANAGER, "signal_event"),
            (RULE_MANAGER, CONDITION_EVALUATOR, "add_rule"),
            (RULE_MANAGER, EVENT_DETECTOR, "define_event"),
        ]), "\n" + trace.format()

    def test_object_manager_signals_create_rule_event(self, db):
        db.tracer.start()
        db.create_rule(probe_rule())
        trace = db.tracer.stop()
        signals = [r for r in trace.records
                   if r.source == OBJECT_MANAGER and r.target == RULE_MANAGER]
        assert any("HiPAC::Rule" in r.detail for r in signals)


class TestSection62EventSignal:
    """§6.2: the Rule Manager divides triggered rules into three groups by
    condition coupling; separate firings get new top-level transactions in
    their own threads; deferred firings are saved; immediate conditions are
    evaluated in subtransactions, then actions execute, then the suspended
    operation resumes."""

    def test_immediate_signal_protocol(self, db):
        db.create_rule(probe_rule())
        db.tracer.start()
        with db.transaction() as txn:
            oid = db.create("Stock", {"symbol": "X", "price": 1.0}, txn)
            db.update(oid, {"price": 2.0}, txn)
        trace = db.tracer.stop()
        assert trace.subsequence([
            (APPLICATION, OBJECT_MANAGER, "execute_operation"),
            (OBJECT_MANAGER, RULE_MANAGER, "signal_event"),
            (RULE_MANAGER, TRANSACTION_MANAGER, "create_transaction"),
            (RULE_MANAGER, CONDITION_EVALUATOR, "evaluate_condition"),
        ]), "\n" + trace.format()

    def test_rule_manager_creates_condition_and_action_transactions(self, db):
        db.create_rule(probe_rule())
        db.tracer.start()
        with db.transaction() as txn:
            oid = db.create("Stock", {"symbol": "X", "price": 1.0}, txn)
            db.update(oid, {"price": 2.0}, txn)
        trace = db.tracer.stop()
        created = trace.count(source=RULE_MANAGER, target=TRANSACTION_MANAGER,
                              operation="create_transaction")
        assert created == 2  # one condition + one action subtransaction

    def test_groups_partitioned_by_coupling(self, db):
        for i, ec in enumerate(("immediate", "deferred", "separate")):
            db.create_rule(probe_rule(name="r-%s" % ec, ec_coupling=ec))
        with db.transaction() as txn:
            oid = db.create("Stock", {"symbol": "X", "price": 1.0}, txn)
            db.update(oid, {"price": 2.0}, txn)
        db.drain()
        firings = db.firing_log()
        assert any(f.separate_thread for f in firings.for_rule("r-separate"))
        assert any(f.deferred for f in firings.for_rule("r-deferred"))
        assert any(f.condition_txn for f in firings.for_rule("r-immediate"))


class TestSection63CommitProcessing:
    """§6.3: at commit, the Transaction Manager signals the Rule Manager;
    deferred-condition firings are evaluated (Condition Evaluator), deferred
    actions simply executed; only then does commit processing resume."""

    def test_commit_protocol(self, db):
        db.create_rule(probe_rule(ec_coupling="deferred"))
        with db.transaction() as txn:
            oid = db.create("Stock", {"symbol": "X", "price": 1.0}, txn)
            db.update(oid, {"price": 2.0}, txn)
            db.tracer.start()
        trace = db.tracer.stop()
        assert trace.subsequence([
            (APPLICATION, TRANSACTION_MANAGER, "commit_transaction"),
            (TRANSACTION_MANAGER, RULE_MANAGER, "signal_event"),
            (RULE_MANAGER, TRANSACTION_MANAGER, "create_transaction"),
            (RULE_MANAGER, CONDITION_EVALUATOR, "evaluate_condition"),
        ]), "\n" + trace.format()

    def test_deferred_work_completes_before_commit_returns(self, db):
        ran = []
        db.create_rule(probe_rule(
            ec_coupling="deferred",
            action=Action.call(lambda ctx: ran.append(True))))
        txn = db.begin()
        oid = db.create("Stock", {"symbol": "X", "price": 1.0}, txn)
        db.update(oid, {"price": 2.0}, txn)
        assert ran == []
        db.commit(txn)
        assert ran == [True]
        assert txn.state == "committed"


class TestFigure41Interface:
    """Figure 4.1: an application reaches HiPAC through exactly four
    modules — data operations, transaction operations, event operations,
    application operations (HiPAC -> application)."""

    def test_all_four_modules_cross_the_interface(self, db):
        app = db.application("demo")
        app.events.define("nudge")
        received = []
        app.operations.register("notify", lambda: received.append(1))
        db.create_rule(Rule(
            name="nudge-rule",
            event=external("nudge"),
            condition=Condition.true(),
            action=Action.of(RequestStep("demo", "notify")),
        ))
        db.tracer.start()
        with app.transactions.run() as txn:                 # module 2
            app.data.create("Stock", {"symbol": "A"}, txn)  # module 1
            app.events.signal("nudge", {}, txn)             # module 3
        trace = db.tracer.stop()                            # module 4 below
        assert received == [1]
        assert trace.count(source=APPLICATION, target=OBJECT_MANAGER) >= 1
        assert trace.count(source=APPLICATION, target=TRANSACTION_MANAGER) >= 1
        assert trace.count(source=APPLICATION, target=EVENT_DETECTOR) >= 1
        assert trace.count(source=RULE_MANAGER, target=APPLICATION) == 1


class TestFigure51ComponentGraph:
    """Figure 5.1: every inter-component call in a full workout stays within
    the edges the figure draws."""

    def test_no_call_outside_figure_edges(self, db):
        app = db.application("demo")
        app.events.define("ping")
        app.operations.register("notify", lambda: None)
        db.create_rule(probe_rule(name="imm"))
        db.create_rule(probe_rule(name="def", ec_coupling="deferred"))
        db.create_rule(Rule(
            name="app-rule",
            event=external("ping"),
            condition=Condition.true(),
            action=Action.of(RequestStep("demo", "notify")),
        ))
        db.tracer.start()
        with db.transaction() as txn:
            oid = db.create("Stock", {"symbol": "X", "price": 1.0}, txn)
            db.update(oid, {"price": 2.0}, txn)
            app.events.signal("ping", {}, txn)
        trace = db.tracer.stop()
        extra = trace.edge_set() - figure_5_1_edges()
        assert not extra, "calls outside Figure 5.1: %s\n%s" % (
            sorted(extra), trace.format())

    def test_workout_covers_most_figure_edges(self, db):
        app = db.application("demo")
        app.events.define("ping")
        app.operations.register("notify", lambda: None)
        db.create_rule(probe_rule(name="imm"))
        db.create_rule(Rule(
            name="app-rule",
            event=external("ping"),
            condition=Condition.true(),
            action=Action.of(RequestStep("demo", "notify")),
        ))
        db.tracer.start()
        with db.transaction() as txn:
            oid = db.create("Stock", {"symbol": "X", "price": 1.0}, txn)
            db.update(oid, {"price": 2.0}, txn)
            app.events.signal("ping", {}, txn)
        trace = db.tracer.stop()
        covered = trace.edge_set() & figure_5_1_edges()
        assert len(covered) >= 9


class TestTracer:
    def test_disabled_tracer_records_nothing(self, db):
        with db.transaction() as txn:
            db.create("Stock", {"symbol": "A"}, txn)
        assert db.tracer.snapshot().records == []

    def test_trace_format_readable(self, db):
        db.tracer.start()
        with db.transaction() as txn:
            db.create("Stock", {"symbol": "A"}, txn)
        trace = db.tracer.stop()
        text = trace.format()
        assert "Application -> ObjectManager" in text

    def test_snapshot_keeps_recording(self, db):
        db.tracer.start()
        with db.transaction() as txn:
            db.create("Stock", {"symbol": "A"}, txn)
        first = len(db.tracer.snapshot().records)
        with db.transaction() as txn:
            db.create("Stock", {"symbol": "B"}, txn)
        assert len(db.tracer.stop().records) > first
