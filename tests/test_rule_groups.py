"""Tests for rule groups (paper §4.2: the SAA's display and trading rule
groups)."""

import pytest

from repro import (
    Action,
    ClassDef,
    Condition,
    HiPAC,
    Rule,
    attributes,
    on_create,
)
from repro.saa import SecuritiesAssistant


@pytest.fixture
def db():
    database = HiPAC(lock_timeout=2.0)
    database.define_class(ClassDef("Doc", attributes("title")))
    return database


def grouped_rule(name, group, sink):
    return Rule(name=name, event=on_create("Doc"),
                condition=Condition.true(),
                action=Action.call(lambda ctx: sink.append(name)),
                group=group)


class TestGroups:
    def test_rules_listed_by_group(self, db):
        sink = []
        db.create_rule(grouped_rule("d1", "display", sink))
        db.create_rule(grouped_rule("d2", "display", sink))
        db.create_rule(grouped_rule("t1", "trading", sink))
        assert db.rules_in_group("display") == ["d1", "d2"]
        assert db.rules_in_group("trading") == ["t1"]
        assert db.rules_in_group("nothing") == []

    def test_group_stored_in_rule_object(self, db):
        sink = []
        rule = db.create_rule(grouped_rule("d1", "display", sink))
        with db.transaction() as txn:
            assert db.read(rule.oid, txn)["group"] == "display"

    def test_disable_group_silences_all_members(self, db):
        sink = []
        db.create_rule(grouped_rule("d1", "display", sink))
        db.create_rule(grouped_rule("d2", "display", sink))
        db.create_rule(grouped_rule("t1", "trading", sink))
        db.disable_group("display")
        with db.transaction() as txn:
            db.create("Doc", {"title": "x"}, txn)
        assert sink == ["t1"]

    def test_enable_group_restores(self, db):
        sink = []
        db.create_rule(grouped_rule("d1", "display", sink))
        db.disable_group("display")
        db.enable_group("display")
        with db.transaction() as txn:
            db.create("Doc", {"title": "x"}, txn)
        assert sink == ["d1"]

    def test_group_toggle_is_transactional(self, db):
        sink = []
        db.create_rule(grouped_rule("d1", "display", sink))
        txn = db.begin()
        db.rule_manager.disable_group("display", txn)
        db.abort(txn)
        with db.transaction() as t2:
            db.create("Doc", {"title": "x"}, t2)
        assert sink == ["d1"]


class TestSAAGroups:
    def test_saa_rules_carry_paper_groups(self):
        db = HiPAC(lock_timeout=2.0)
        saa = SecuritiesAssistant(db, coupling="immediate")
        saa.add_ticker("NYSE")
        saa.add_display("alice")
        saa.add_trader("TRDSVC")
        saa.add_trading_rule(client="A", symbol="XRX", shares=1,
                             limit=50.0, service="TRDSVC")
        assert db.rules_in_group("display") == [
            "saa:ticker-window:alice", "saa:trade-display:alice"]
        assert db.rules_in_group("trading") == ["saa:trade:A:XRX:1"]

    def test_disabling_display_group_mutes_all_displays(self):
        db = HiPAC(lock_timeout=2.0)
        saa = SecuritiesAssistant(db, coupling="immediate")
        ticker = saa.add_ticker("NYSE")
        alice = saa.add_display("alice")
        bob = saa.add_display("bob")
        db.disable_group("display")
        ticker.push_quote("XRX", 45.0)
        ticker.push_quote("XRX", 46.0)
        assert alice.ticker_window == []
        assert bob.ticker_window == []
