"""Tests for the action model: step varieties, builders, context helpers."""

import pytest

from repro import (
    Action,
    AbortStep,
    ClassDef,
    Condition,
    CreateObject,
    DatabaseStep,
    HiPAC,
    IntegrityViolation,
    Query,
    Rule,
    RuleError,
    SignalStep,
    attributes,
    external,
    on_create,
    on_update,
)
from repro.rules.actions import CallStep


@pytest.fixture
def db():
    database = HiPAC(lock_timeout=2.0)
    database.define_class(ClassDef("Doc", attributes(
        "title", ("words", "int"))))
    database.define_class(ClassDef("Summary", attributes(
        "doc_title", ("count", "int"))))
    return database


class TestActionConstruction:
    def test_steps_must_be_action_steps(self):
        with pytest.raises(RuleError):
            Action(("not a step",))

    def test_action_of(self):
        action = Action.of(CallStep(lambda ctx: 1), CallStep(lambda ctx: 2))
        assert len(action.steps) == 2

    def test_empty_action(self):
        assert Action().is_empty()
        assert not Action.call(lambda ctx: None).is_empty()

    def test_run_returns_step_results(self, db):
        db.create_rule(Rule(
            name="r", event=on_create("Doc"), condition=Condition.true(),
            action=Action.of(CallStep(lambda ctx: "a"),
                             CallStep(lambda ctx: "b"))))
        with db.transaction() as txn:
            db.create("Doc", {"title": "t"}, txn)
        # results are internal, but steps must both have run:
        firing = db.firing_log().all()[0]
        assert firing.executed


class TestDatabaseStep:
    def test_static_operation(self, db):
        db.create_rule(Rule(
            name="summarize",
            event=on_create("Doc"),
            condition=Condition.true(),
            action=Action.of(DatabaseStep(
                CreateObject("Summary", {"doc_title": "fixed", "count": 1}))),
        ))
        with db.transaction() as txn:
            db.create("Doc", {"title": "t"}, txn)
        with db.transaction() as r:
            assert len(db.query(Query("Summary"), r)) == 1

    def test_builder_operation(self, db):
        db.create_rule(Rule(
            name="summarize",
            event=on_create("Doc"),
            condition=Condition.true(),
            action=Action.of(DatabaseStep(
                lambda ctx: CreateObject(
                    "Summary", {"doc_title": ctx.bindings["new_title"],
                                "count": 0}))),
        ))
        with db.transaction() as txn:
            db.create("Doc", {"title": "report"}, txn)
        with db.transaction() as r:
            assert db.query(Query("Summary"), r).values("doc_title") == ["report"]

    def test_builder_returning_list(self, db):
        db.create_rule(Rule(
            name="two-summaries",
            event=on_create("Doc"),
            condition=Condition.true(),
            action=Action.of(DatabaseStep(
                lambda ctx: [CreateObject("Summary", {"doc_title": "1"}),
                             CreateObject("Summary", {"doc_title": "2"})])),
        ))
        with db.transaction() as txn:
            db.create("Doc", {"title": "t"}, txn)
        with db.transaction() as r:
            assert len(db.query(Query("Summary"), r)) == 2

    def test_describe(self):
        assert "create Summary" in DatabaseStep(
            CreateObject("Summary", {})).describe()
        assert "builder" in DatabaseStep(lambda ctx: None).describe()


class TestSignalStep:
    def test_signal_with_static_args(self, db):
        db.define_event("ping", "n")
        got = []
        db.create_rule(Rule(
            name="emit",
            event=on_create("Doc"),
            condition=Condition.true(),
            action=Action.of(SignalStep("ping", {"n": 7})),
        ))
        db.create_rule(Rule(
            name="listen",
            event=external("ping", "n"),
            condition=Condition.true(),
            action=Action.call(lambda ctx: got.append(ctx.bindings["n"])),
        ))
        with db.transaction() as txn:
            db.create("Doc", {"title": "t"}, txn)
        assert got == [7]

    def test_signal_with_args_builder(self, db):
        db.define_event("ping", "title")
        got = []
        db.create_rule(Rule(
            name="emit",
            event=on_create("Doc"),
            condition=Condition.true(),
            action=Action.of(SignalStep(
                "ping", lambda ctx: {"title": ctx.bindings["new_title"]})),
        ))
        db.create_rule(Rule(
            name="listen",
            event=external("ping", "title"),
            condition=Condition.true(),
            action=Action.call(lambda ctx: got.append(ctx.bindings["title"])),
        ))
        with db.transaction() as txn:
            db.create("Doc", {"title": "memo"}, txn)
        assert got == ["memo"]

    def test_describe(self):
        assert SignalStep("ping").describe() == "signal:ping"


class TestAbortStep:
    def test_default_raises_integrity_violation(self, db):
        db.create_rule(Rule(
            name="forbid",
            event=on_create("Doc"),
            condition=Condition.true(),
            action=Action.of(AbortStep("no docs allowed")),
        ))
        txn = db.begin()
        with pytest.raises(IntegrityViolation) as info:
            db.create("Doc", {"title": "t"}, txn)
        assert info.value.constraint == "forbid"
        db.abort(txn)

    def test_custom_error(self, db):
        db.create_rule(Rule(
            name="forbid",
            event=on_create("Doc"),
            condition=Condition.true(),
            action=Action.of(AbortStep(error=ValueError("custom"))),
        ))
        txn = db.begin()
        with pytest.raises(ValueError):
            db.create("Doc", {"title": "t"}, txn)
        db.abort(txn)


class TestContextHelpers:
    def test_read_and_query_in_action(self, db):
        seen = {}

        def act(ctx):
            seen["read"] = ctx.read(ctx.bindings["oid"])["title"]
            seen["count"] = len(ctx.query(Query("Doc")))

        db.create_rule(Rule(
            name="inspect", event=on_create("Doc"),
            condition=Condition.true(), action=Action.call(act)))
        with db.transaction() as txn:
            db.create("Doc", {"title": "t"}, txn)
        assert seen == {"read": "t", "count": 1}

    def test_request_without_registry_raises(self):
        from repro.rules.actions import ActionContext
        from repro.events.signal import EventSignal
        ctx = ActionContext(object_manager=None, txn=None,
                            signal=EventSignal(kind="external"),
                            bindings={}, results=[])
        with pytest.raises(RuleError):
            ctx.request("app", "op")

    def test_signal_without_detector_raises(self):
        from repro.rules.actions import ActionContext
        from repro.events.signal import EventSignal
        ctx = ActionContext(object_manager=None, txn=None,
                            signal=EventSignal(kind="external"),
                            bindings={}, results=[])
        with pytest.raises(RuleError):
            SignalStep("ping").execute(ctx)

    def test_delete_in_action(self, db):
        db.create_rule(Rule(
            name="self-destruct",
            event=on_update("Doc", attrs=["words"]),
            condition=Condition(guard=lambda b, r: b["new_words"] == 0),
            action=Action.call(lambda ctx: ctx.delete(ctx.bindings["oid"])),
        ))
        with db.transaction() as txn:
            oid = db.create("Doc", {"title": "t", "words": 10}, txn)
        with db.transaction() as txn:
            db.update(oid, {"words": 0}, txn)
        assert not db.store.exists(oid)
