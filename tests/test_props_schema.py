"""Property-based tests for schema inheritance and DDL undo."""

from hypothesis import given, settings, strategies as st

from repro import AttrType, AttributeDef, ClassDef, HiPAC
from repro.objstore.types import Schema

# Random single-inheritance forests over up to 6 classes: parent[i] < i or None.
forests = st.lists(st.one_of(st.none(), st.integers(0, 5)), min_size=1,
                   max_size=6).map(
    lambda parents: [None if p is None or p >= i else p
                     for i, p in enumerate(parents)])


def build_schema(parents):
    schema = Schema()
    for i, parent in enumerate(parents):
        schema.define_class(ClassDef(
            "C%d" % i,
            (AttributeDef("a%d" % i),),
            superclass=None if parent is None else "C%d" % parent,
        ))
    return schema


class TestInheritanceProperties:
    @settings(max_examples=100, deadline=None)
    @given(parents=forests)
    def test_subclasses_consistent_with_is_subclass(self, parents):
        schema = build_schema(parents)
        names = ["C%d" % i for i in range(len(parents))]
        for ancestor in names:
            subs = set(schema.subclasses(ancestor))
            for name in names:
                assert (name in subs) == schema.is_subclass(name, ancestor)

    @settings(max_examples=100, deadline=None)
    @given(parents=forests)
    def test_attributes_are_union_along_ancestry(self, parents):
        schema = build_schema(parents)
        for i in range(len(parents)):
            expected = set()
            j = i
            while j is not None:
                expected.add("a%d" % j)
                j = parents[j]
            assert set(schema.get("C%d" % i).all_attributes) == expected

    @settings(max_examples=100, deadline=None)
    @given(parents=forests)
    def test_every_class_is_its_own_subclass(self, parents):
        schema = build_schema(parents)
        for i in range(len(parents)):
            assert schema.is_subclass("C%d" % i, "C%d" % i)


class TestDDLUndoWithIndexes:
    def test_aborted_drop_restores_index_contents(self):
        db = HiPAC(lock_timeout=2.0)
        db.define_class(ClassDef("C", (
            AttributeDef("k", AttrType.STRING, indexed=True),)))
        with db.transaction() as txn:
            oid = db.create("C", {"k": "x"}, txn)
        txn = db.begin()
        db.delete(oid, txn)          # empty the extent...
        db.drop_class("C", txn)      # ...then drop the class
        db.abort(txn)
        index = db.store.indexes.get("C", "k")
        assert index is not None
        assert index.lookup("x") == {oid}

    def test_aborted_define_removes_index(self):
        db = HiPAC(lock_timeout=2.0)
        txn = db.begin()
        db.define_class(ClassDef("Tmp", (
            AttributeDef("k", AttrType.STRING, indexed=True),)), txn)
        db.abort(txn)
        assert db.store.indexes.get("Tmp", "k") is None
        assert not db.store.schema.has("Tmp")

    def test_committed_drop_then_redefine_is_clean(self):
        db = HiPAC(lock_timeout=2.0)
        db.define_class(ClassDef("C", (
            AttributeDef("k", AttrType.STRING, indexed=True),)))
        with db.transaction() as txn:
            oid = db.create("C", {"k": "x"}, txn)
        with db.transaction() as txn:
            db.delete(oid, txn)
            db.drop_class("C", txn)
        db.define_class(ClassDef("C", (
            AttributeDef("k", AttrType.STRING, indexed=True),)))
        with db.transaction() as txn:
            db.create("C", {"k": "y"}, txn)
        assert db.store.indexes.get("C", "k").lookup("y")
        assert not db.store.indexes.get("C", "k").lookup("x")
