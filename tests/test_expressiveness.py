"""The §4 expressiveness contrast, made executable.

"Even in those DBMS's that provide some form of active database facilities,
both the events that trigger actions and the actions that they trigger are
limited to database operations.  Consider triggers in System R and Sybase.
The event for a trigger is an insert, update, or delete on a table; the
action is expressed in SQL.  In contrast, HiPAC allows rule events to be
defined by the application, and allows rule actions to contain requests to
applications."

Each test demonstrates a paper scenario ECA rules express that the simple
trigger baseline structurally cannot (its API admits only DML events and
database-only actions with implicit immediate coupling).
"""

import pytest

from repro import (
    Action,
    ClassDef,
    Condition,
    HiPAC,
    Rule,
    attributes,
    every,
    external,
    on_commit,
    on_update,
)
from repro.baseline import PassiveDBMS, Trigger, TriggerSystem
from repro.errors import RuleError
from repro.rules.actions import RequestStep


class TestTriggerBaselineLimits:
    """What the baseline's API structurally rejects."""

    def test_no_temporal_events(self):
        # Simple triggers accept only insert/update/delete.
        with pytest.raises(RuleError):
            Trigger("tick", "Stock", "every-10s", lambda inv: None)

    def test_no_transaction_events(self):
        with pytest.raises(RuleError):
            Trigger("on-commit", "Stock", "commit", lambda inv: None)

    def test_no_external_events(self):
        with pytest.raises(RuleError):
            Trigger("app-event", "Stock", "signal", lambda inv: None)

    def test_implicit_immediate_coupling_only(self):
        """Trigger bodies run in the triggering transaction — abort of the
        trigger discards their effects; there is no separate/deferred
        choice in the API (TriggerInvocation exposes only the triggering
        txn)."""
        db = PassiveDBMS(lock_timeout=2.0)
        db.define_class(ClassDef("Stock", attributes("symbol")))
        system = TriggerSystem(db)
        invocations = []
        system.create_trigger(Trigger(
            "t", "Stock", "insert", lambda inv: invocations.append(inv)))
        with db.transaction() as txn:
            db.create("Stock", {"symbol": "A"}, txn)
        assert invocations[0].txn is txn  # no other transaction context exists


class TestHiPACExpressesThePaperScenarios:
    """The same scenarios, expressible as ECA rules."""

    @pytest.fixture
    def db(self):
        database = HiPAC(lock_timeout=2.0)
        database.define_class(ClassDef("Stock", attributes(
            "symbol", ("price", "number"))))
        return database

    def test_application_defined_event_triggers_rule(self, db):
        db.define_event("analyst-note", "text")
        notes = []
        db.create_rule(Rule(
            name="record-note",
            event=external("analyst-note", "text"),
            condition=Condition.true(),
            action=Action.call(lambda ctx: notes.append(ctx.bindings["text"])),
        ))
        db.signal_event("analyst-note", {"text": "watch XRX"})
        assert notes == ["watch XRX"]

    def test_action_requests_application_operation(self, db):
        app = db.application("display")
        shown = []
        app.operations.register("show", lambda msg: shown.append(msg))
        db.create_rule(Rule(
            name="display-quote",
            event=on_update("Stock", attrs=["price"]),
            condition=Condition.true(),
            action=Action.of(RequestStep(
                "display", "show",
                lambda ctx: {"msg": ctx.bindings["new_price"]})),
        ))
        with db.transaction() as txn:
            oid = db.create("Stock", {"symbol": "A", "price": 1.0}, txn)
            db.update(oid, {"price": 2.0}, txn)
        assert shown == [2.0]

    def test_temporal_event_rule(self, db):
        ticks = []
        db.create_rule(Rule(
            name="tick",
            event=every(10.0),
            condition=Condition.true(),
            action=Action.call(lambda ctx: ticks.append(ctx.signal.timestamp)),
        ))
        db.advance_time(30.0)
        assert len(ticks) == 3

    def test_commit_event_rule(self, db):
        commits = []
        db.create_rule(Rule(
            name="on-commit",
            event=on_commit(),
            condition=Condition.true(),
            action=Action.call(lambda ctx: commits.append(1)),
        ))
        with db.transaction() as txn:
            db.create("Stock", {"symbol": "A"}, txn)
        assert commits

    def test_decoupled_action_survives_trigger_abort(self, db):
        """Separate coupling has no trigger-baseline equivalent: the
        notification runs even though the triggering transaction aborted
        (an audit/alerting pattern immediate-only triggers cannot give)."""
        alerts = []
        db.create_rule(Rule(
            name="audit",
            event=on_update("Stock", attrs=["price"]),
            condition=Condition.true(),
            action=Action.call(lambda ctx: alerts.append(
                ctx.bindings["new_price"])),
            ec_coupling="separate",
        ))
        txn = db.begin()
        oid = db.create("Stock", {"symbol": "A", "price": 1.0}, txn)
        db.update(oid, {"price": 99.0}, txn)
        db.abort(txn)
        db.drain()
        assert alerts == [99.0]
