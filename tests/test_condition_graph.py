"""Tests for the condition graph: sharing, incremental maintenance, undo."""

import pytest

from repro import (
    Attr,
    ClassDef,
    Compare,
    Condition,
    EventArg,
    HiPAC,
    Query,
    attributes,
)
from repro.conditions.graph import alpha_key
from repro.events.signal import EventSignal


@pytest.fixture
def db():
    database = HiPAC(lock_timeout=2.0)
    database.define_class(ClassDef("Stock", attributes(
        "symbol", ("price", "number"))))
    return database


def evaluator(db):
    return db.condition_evaluator


def add_condition(db, condition):
    with db.transaction() as txn:
        evaluator(db).add_rule(condition, txn)


def signal_for(db):
    return EventSignal(kind="external", name="probe", args={})


class TestSharing:
    def test_identical_queries_share_one_node(self, db):
        q1 = Query("Stock", Attr("price") > 50)
        q2 = Query("Stock", Attr("price") > 50)
        add_condition(db, Condition.of(q1))
        add_condition(db, Condition.of(q2))
        assert evaluator(db).graph.node_count() == 1
        assert evaluator(db).graph.stats["nodes_shared"] == 1

    def test_different_predicates_get_own_nodes(self, db):
        add_condition(db, Condition.of(Query("Stock", Attr("price") > 50)))
        add_condition(db, Condition.of(Query("Stock", Attr("price") > 60)))
        assert evaluator(db).graph.node_count() == 2

    def test_projection_does_not_break_sharing(self, db):
        q1 = Query("Stock", Attr("price") > 50, project=("symbol",))
        q2 = Query("Stock", Attr("price") > 50)
        add_condition(db, Condition.of(q1))
        add_condition(db, Condition.of(q2))
        assert evaluator(db).graph.node_count() == 1

    def test_parameterized_queries_not_materialized(self, db):
        q = Query("Stock", Compare(Attr("price"), ">", EventArg("limit")))
        add_condition(db, Condition.of(q))
        assert evaluator(db).graph.node_count() == 0

    def test_release_drops_node_at_zero_refs(self, db):
        q = Query("Stock", Attr("price") > 50)
        add_condition(db, Condition.of(q))
        add_condition(db, Condition.of(q))
        with db.transaction() as txn:
            evaluator(db).delete_rule(Condition.of(q), txn)
        assert evaluator(db).graph.node_count() == 1
        with db.transaction() as txn:
            evaluator(db).delete_rule(Condition.of(q), txn)
        assert evaluator(db).graph.node_count() == 0


class TestIncrementalMaintenance:
    def add_watch(self, db, threshold=50):
        query = Query("Stock", Attr("price") > threshold)
        add_condition(db, Condition.of(query))
        return evaluator(db).graph.node_for(query)

    def test_memory_initialized_from_existing_data(self, db):
        with db.transaction() as txn:
            hi = db.create("Stock", {"symbol": "H", "price": 90.0}, txn)
            db.create("Stock", {"symbol": "L", "price": 10.0}, txn)
        node = self.add_watch(db)
        assert node.memory == {hi}

    def test_create_enters_memory(self, db):
        node = self.add_watch(db)
        with db.transaction() as txn:
            hi = db.create("Stock", {"symbol": "H", "price": 90.0}, txn)
            db.create("Stock", {"symbol": "L", "price": 10.0}, txn)
        assert node.memory == {hi}

    def test_update_moves_in_and_out(self, db):
        node = self.add_watch(db)
        with db.transaction() as txn:
            oid = db.create("Stock", {"symbol": "A", "price": 10.0}, txn)
        assert node.memory == set()
        with db.transaction() as txn:
            db.update(oid, {"price": 70.0}, txn)
        assert node.memory == {oid}
        with db.transaction() as txn:
            db.update(oid, {"price": 20.0}, txn)
        assert node.memory == set()

    def test_delete_leaves_memory(self, db):
        node = self.add_watch(db)
        with db.transaction() as txn:
            oid = db.create("Stock", {"symbol": "A", "price": 90.0}, txn)
        with db.transaction() as txn:
            db.delete(oid, txn)
        assert node.memory == set()

    def test_abort_reverts_memory(self, db):
        node = self.add_watch(db)
        with db.transaction() as txn:
            keeper = db.create("Stock", {"symbol": "K", "price": 90.0}, txn)
        txn = db.begin()
        db.create("Stock", {"symbol": "T", "price": 95.0}, txn)
        db.update(keeper, {"price": 5.0}, txn)
        db.abort(txn)
        assert node.memory == {keeper}

    def test_abort_of_nested_child_reverts_only_child(self, db):
        node = self.add_watch(db)
        top = db.begin()
        a = db.create("Stock", {"symbol": "A", "price": 90.0}, top)
        child = db.begin(top)
        b = db.create("Stock", {"symbol": "B", "price": 91.0}, child)
        db.abort(child)
        assert node.memory == {a}
        db.commit(top)
        assert node.memory == {a}


class TestGraphEvaluation:
    def test_graph_answers_match_naive(self, db):
        query = Query("Stock", Attr("price") > 50)
        add_condition(db, Condition.of(query))
        with db.transaction() as txn:
            db.create("Stock", {"symbol": "H", "price": 90.0}, txn)
            db.create("Stock", {"symbol": "L", "price": 10.0}, txn)
        with db.transaction() as txn:
            outcome = evaluator(db).evaluate(
                Condition.of(query), signal_for(db), txn)
        assert outcome.satisfied
        assert outcome.results[0].values("symbol") == ["H"]
        assert evaluator(db).stats["graph_answers"] == 1

    def test_memo_shares_within_round(self, db):
        query = Query("Stock", Attr("price") > 50)
        add_condition(db, Condition.of(query))
        memo = {}
        with db.transaction() as txn:
            evaluator(db).evaluate(Condition.of(query), signal_for(db), txn,
                                   memo=memo)
            evaluator(db).evaluate(Condition.of(query), signal_for(db), txn,
                                   memo=memo)
        assert evaluator(db).stats["memo_hits"] == 1

    def test_guard_applied(self, db):
        cond = Condition(queries=(), guard=lambda bindings, results: False)
        with db.transaction() as txn:
            outcome = evaluator(db).evaluate(cond, signal_for(db), txn)
        assert not outcome.satisfied

    def test_guard_exception_wrapped(self, db):
        from repro.errors import ConditionError
        cond = Condition(queries=(),
                         guard=lambda bindings, results: 1 / 0)
        with pytest.raises(ConditionError):
            with db.transaction() as txn:
                evaluator(db).evaluate(cond, signal_for(db), txn)

    def test_empty_condition_trivially_satisfied(self, db):
        with db.transaction() as txn:
            outcome = evaluator(db).evaluate(Condition.true(), signal_for(db), txn)
        assert outcome.satisfied
        assert outcome.results == []

    def test_multi_query_all_must_match(self, db):
        q_hi = Query("Stock", Attr("price") > 50)
        q_lo = Query("Stock", Attr("price") < 5)
        cond = Condition.of(q_hi, q_lo)
        add_condition(db, cond)
        with db.transaction() as txn:
            db.create("Stock", {"symbol": "H", "price": 90.0}, txn)
        with db.transaction() as txn:
            outcome = evaluator(db).evaluate(cond, signal_for(db), txn)
        assert not outcome.satisfied

    def test_parameterized_query_uses_bindings(self, db):
        query = Query("Stock", Compare(Attr("symbol"), "==", EventArg("sym")))
        cond = Condition.of(query)
        add_condition(db, cond)
        with db.transaction() as txn:
            db.create("Stock", {"symbol": "A", "price": 1.0}, txn)
        signal = EventSignal(kind="external", name="probe", args={"sym": "A"})
        with db.transaction() as txn:
            outcome = evaluator(db).evaluate(cond, signal, txn)
        assert outcome.satisfied

    def test_naive_mode_never_uses_graph(self):
        db = HiPAC(lock_timeout=2.0, use_condition_graph=False)
        db.define_class(ClassDef("Stock", attributes("symbol", ("price", "number"))))
        query = Query("Stock", Attr("price") > 50)
        with db.transaction() as txn:
            db.condition_evaluator.add_rule(Condition.of(query), txn)
        assert db.condition_evaluator.graph.node_count() == 0
        with db.transaction() as txn:
            db.condition_evaluator.evaluate(
                Condition.of(query), EventSignal(kind="external", name="p"), txn)
        assert db.condition_evaluator.stats["executor_answers"] == 1


class TestAlphaKey:
    def test_key_ignores_projection(self):
        q1 = Query("S", Attr("a") > 1, project=("a",))
        q2 = Query("S", Attr("a") > 1, limit=5)
        assert alpha_key(q1) == alpha_key(q2)

    def test_key_respects_subclass_flag(self):
        q1 = Query("S", Attr("a") > 1, include_subclasses=False)
        q2 = Query("S", Attr("a") > 1)
        assert alpha_key(q1) != alpha_key(q2)
