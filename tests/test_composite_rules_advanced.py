"""Advanced composite-event rule scenarios: couplings, enable/disable of
composite rules, shared members, analysis over temporal baselines."""

import pytest

from repro import (
    Action,
    ClassDef,
    Condition,
    Conjunction,
    Disjunction,
    HiPAC,
    Rule,
    Sequence,
    VirtualClock,
    after,
    attributes,
    external,
    on_create,
    on_delete,
)


@pytest.fixture
def db():
    database = HiPAC(lock_timeout=2.0)
    database.define_class(ClassDef("A", attributes(("v", "int"))))
    database.define_class(ClassDef("B", attributes(("v", "int"))))
    return database


class TestCompositeCouplings:
    def test_sequence_rule_deferred_coupling(self, db):
        db.define_event("go")
        ran = []
        db.create_rule(Rule(
            name="seq-def",
            event=Sequence(on_create("A"), external("go")),
            condition=Condition.true(),
            action=Action.call(lambda ctx: ran.append("ran")),
            ec_coupling="deferred",
        ))
        txn = db.begin()
        db.create("A", {"v": 1}, txn)
        db.signal_event("go", {}, txn)     # completes the sequence
        assert ran == []                   # deferred until commit
        db.commit(txn)
        assert ran == ["ran"]

    def test_sequence_rule_separate_coupling(self, db):
        db.define_event("go")
        ran = []
        db.create_rule(Rule(
            name="seq-sep",
            event=Sequence(on_create("A"), external("go")),
            condition=Condition.true(),
            action=Action.call(lambda ctx: ran.append("ran")),
            ec_coupling="separate",
        ))
        with db.transaction() as txn:
            db.create("A", {"v": 1}, txn)
            db.signal_event("go", {}, txn)
        db.drain()
        assert ran == ["ran"]

    def test_conjunction_rule_across_transactions(self, db):
        ran = []
        db.create_rule(Rule(
            name="conj",
            event=Conjunction(on_create("A"), on_create("B")),
            condition=Condition.true(),
            action=Action.call(lambda ctx: ran.append(1)),
        ))
        with db.transaction() as txn:
            db.create("B", {"v": 1}, txn)
        assert ran == []
        with db.transaction() as txn:
            db.create("A", {"v": 1}, txn)
        assert ran == [1]


class TestCompositeRuleManagement:
    def test_disable_composite_rule_stops_recognition_effects(self, db):
        ran = []
        db.create_rule(Rule(
            name="dis",
            event=Disjunction(on_create("A"), on_create("B")),
            condition=Condition.true(),
            action=Action.call(lambda ctx: ran.append(1)),
        ))
        db.disable_rule("dis")
        with db.transaction() as txn:
            db.create("A", {"v": 1}, txn)
        assert ran == []
        db.enable_rule("dis")
        with db.transaction() as txn:
            db.create("B", {"v": 1}, txn)
        assert ran == [1]

    def test_delete_composite_rule_unprograms_members(self, db):
        db.create_rule(Rule(
            name="tmp",
            event=Disjunction(on_create("A"), on_delete("A")),
            condition=Condition.true(),
            action=Action.call(lambda ctx: None),
        ))
        assert db.object_manager.event_detector.is_defined(on_create("A"))
        db.delete_rule("tmp")
        assert not db.object_manager.event_detector.is_defined(on_create("A"))
        assert not db.composite_detector.is_defined(
            Disjunction(on_create("A"), on_delete("A")))

    def test_two_rules_share_composite_members(self, db):
        ran = []
        for name in ("r1", "r2"):
            db.create_rule(Rule(
                name=name,
                event=Disjunction(on_create("A"), on_create("B")),
                condition=Condition.true(),
                action=Action.call(lambda ctx, n=name: ran.append(n)),
            ))
        db.delete_rule("r1")
        with db.transaction() as txn:
            db.create("A", {"v": 1}, txn)
        assert ran == ["r2"]


class TestTemporalBaselineRules:
    def test_relative_rule_with_composite_baseline(self):
        clock = VirtualClock()
        db = HiPAC(clock=clock, lock_timeout=2.0)
        db.define_class(ClassDef("A", attributes(("v", "int"))))
        db.define_event("manual")
        ran = []
        baseline = Disjunction(on_create("A"), external("manual"))
        db.create_rule(Rule(
            name="after-either",
            event=after(baseline, 10.0),
            condition=Condition.true(),
            action=Action.call(lambda ctx: ran.append(ctx.signal.timestamp)),
        ))
        clock.advance(5.0)
        db.signal_event("manual")          # baseline occurrence at t=5
        clock.advance(9.0)
        assert ran == []
        clock.advance(1.0)
        assert ran == [15.0]
        with db.transaction() as txn:      # second baseline via create
            db.create("A", {"v": 1}, txn)
        clock.advance(10.0)
        assert ran == [15.0, 25.0]

    def test_analysis_sees_temporal_baseline_edges(self):
        from repro.objstore.operations import CreateObject
        from repro.rules.actions import DatabaseStep
        from repro.tools import RuleBaseAnalyzer
        creator = Rule(
            name="creator", event=external("tick"),
            condition=Condition.true(),
            action=Action.of(DatabaseStep(CreateObject("A", {"v": 1}))))
        watcher = Rule(
            name="late-watcher", event=after(on_create("A"), 30.0),
            condition=Condition.true(),
            action=Action.call(lambda ctx: None))
        analyzer = RuleBaseAnalyzer([creator, watcher])
        assert ("creator", "late-watcher") in analyzer.triggering_edges()
