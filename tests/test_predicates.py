"""Tests for the predicate AST: evaluation, sugar, structural identity."""

import pytest

from repro.errors import QueryError
from repro.objstore.predicates import (
    TRUE,
    And,
    Attr,
    Compare,
    Const,
    EventArg,
    Or,
    conjuncts,
    equality_lookups,
)


class TestValueExprs:
    def test_const(self):
        assert Const(5).evaluate({}, {}) == 5

    def test_attr_reads_object(self):
        assert Attr("price").evaluate({"price": 3}, {}) == 3

    def test_attr_missing_is_none(self):
        assert Attr("price").evaluate({}, {}) is None

    def test_event_arg_reads_bindings(self):
        assert EventArg("new_price").evaluate({}, {"new_price": 7}) == 7

    def test_event_arg_unbound_raises(self):
        with pytest.raises(QueryError):
            EventArg("x").evaluate({}, {})

    def test_empty_names_rejected(self):
        with pytest.raises(QueryError):
            Attr("")
        with pytest.raises(QueryError):
            EventArg("")

    def test_expr_equality_is_structural(self):
        assert Attr("a") == Attr("a")
        assert not (Attr("a") == Attr("b"))
        assert not (Attr("a") == Const("a"))
        assert hash(Attr("a")) == hash(Attr("a"))


class TestComparisonSugar:
    def test_gt_builds_compare(self):
        pred = Attr("price") > 50
        assert isinstance(pred, Compare)
        assert pred.matches({"price": 51}, {})
        assert not pred.matches({"price": 50}, {})

    def test_all_operators(self):
        assert (Attr("x") >= 5).matches({"x": 5}, {})
        assert (Attr("x") <= 5).matches({"x": 5}, {})
        assert (Attr("x") < 5).matches({"x": 4}, {})
        assert (Attr("x") == 5).matches({"x": 5}, {})
        assert (Attr("x") != 5).matches({"x": 6}, {})

    def test_is_in(self):
        pred = Attr("sym").is_in(["A", "B"])
        assert pred.matches({"sym": "A"}, {})
        assert not pred.matches({"sym": "C"}, {})

    def test_explicit_compare_between_exprs(self):
        pred = Compare(Attr("price"), ">", EventArg("limit"))
        assert pred.matches({"price": 10}, {"limit": 5})
        assert not pred.matches({"price": 4}, {"limit": 5})


class TestNullAndTypeSafety:
    def test_none_never_matches_ordering(self):
        assert not (Attr("x") > 5).matches({}, {})
        assert not (Attr("x") < 5).matches({"x": None}, {})

    def test_none_equality(self):
        assert (Attr("x") == None).matches({}, {})  # noqa: E711
        assert (Attr("x") != None).matches({"x": 1}, {})  # noqa: E711

    def test_incomparable_types_never_match(self):
        assert not (Attr("x") > 5).matches({"x": "str"}, {})

    def test_in_with_non_container_never_matches(self):
        pred = Compare(Attr("x"), "in", Const(5))
        assert not pred.matches({"x": 1}, {})


class TestBooleanCombinators:
    def test_and(self):
        pred = (Attr("a") > 1) & (Attr("b") > 1)
        assert pred.matches({"a": 2, "b": 2}, {})
        assert not pred.matches({"a": 2, "b": 0}, {})

    def test_or(self):
        pred = (Attr("a") > 1) | (Attr("b") > 1)
        assert pred.matches({"a": 0, "b": 2}, {})
        assert not pred.matches({"a": 0, "b": 0}, {})

    def test_not(self):
        pred = ~(Attr("a") > 1)
        assert pred.matches({"a": 0}, {})
        assert not pred.matches({"a": 2}, {})

    def test_true_predicate(self):
        assert TRUE.matches({}, {})

    def test_and_requires_two(self):
        with pytest.raises(QueryError):
            And(TRUE)

    def test_or_requires_two(self):
        with pytest.raises(QueryError):
            Or(TRUE)

    def test_unsupported_operator_rejected(self):
        with pytest.raises(QueryError):
            Compare(Attr("a"), "~=", Const(1))


class TestStructuralIdentity:
    def test_identical_predicates_equal(self):
        assert (Attr("p") > 50) == (Attr("p") > 50)
        assert hash(Attr("p") > 50) == hash(Attr("p") > 50)

    def test_and_is_order_insensitive(self):
        left = And(Attr("a") > 1, Attr("b") > 2)
        right = And(Attr("b") > 2, Attr("a") > 1)
        assert left == right

    def test_or_is_order_insensitive(self):
        assert Or(Attr("a") > 1, Attr("b") > 2) == Or(Attr("b") > 2, Attr("a") > 1)

    def test_different_constants_differ(self):
        assert (Attr("p") > 50) != (Attr("p") > 51)

    def test_attributes_collected(self):
        pred = And(Attr("a") > 1, Compare(Attr("b"), "==", EventArg("x")))
        assert pred.attributes() == {"a", "b"}
        assert pred.event_args() == {"x"}


class TestPlannerHelpers:
    def test_conjuncts_flatten(self):
        pred = And(Attr("a") > 1, And(Attr("b") > 2, Attr("c") > 3))
        assert len(conjuncts(pred)) == 3

    def test_conjuncts_single(self):
        assert conjuncts(TRUE) == (TRUE,)

    def test_equality_lookups_found(self):
        pred = And(Compare(Attr("sym"), "==", Const("A")), Attr("p") > 1)
        lookups = equality_lookups(pred)
        assert set(lookups) == {"sym"}
        assert lookups["sym"].evaluate({}, {}) == "A"

    def test_equality_lookups_event_arg(self):
        pred = Compare(Attr("sym"), "==", EventArg("s"))
        lookups = equality_lookups(pred)
        assert lookups["sym"].evaluate({}, {"s": "B"}) == "B"

    def test_equality_lookup_reversed_sides(self):
        pred = Compare(Const("A"), "==", Attr("sym"))
        assert "sym" in equality_lookups(pred)

    def test_attr_to_attr_not_indexable(self):
        pred = Compare(Attr("a"), "==", Attr("b"))
        assert equality_lookups(pred) == {}
