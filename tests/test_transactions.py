"""Tests for the nested transaction model: structure, commit, abort, undo."""

import pytest

from repro.errors import TransactionStateError
from repro.objstore.store import ObjectStore
from repro.objstore.types import AttrType, AttributeDef, ClassDef
from repro.txn.locks import LockManager, LockMode, LockResource
from repro.txn.manager import TransactionManager
from repro.txn.transaction import ABORTED, ACTIVE, COMMITTED
from repro.txn.undo import CallbackUndo, DeltaUndo


@pytest.fixture
def tm():
    return TransactionManager(LockManager(default_timeout=1.0))


def seeded_store():
    store = ObjectStore()
    store.define_class(ClassDef("C", (AttributeDef("v", AttrType.INT),)))
    return store


class TestStructure:
    def test_top_level(self, tm):
        t = tm.create_transaction()
        assert t.is_top_level()
        assert t.depth == 0
        assert t.top_level() is t

    def test_nesting(self, tm):
        t = tm.create_transaction()
        c = tm.create_transaction(t)
        g = tm.create_transaction(c)
        assert g.depth == 2
        assert g.top_level() is t
        assert g.is_descendant_of(t)
        assert not t.is_descendant_of(g)
        assert list(g.ancestors()) == [c, t]

    def test_children_tracked(self, tm):
        t = tm.create_transaction()
        a = tm.create_transaction(t)
        b = tm.create_transaction(t)
        assert t.children == [a, b]
        assert set(t.active_children()) == {a, b}

    def test_tree_metrics(self, tm):
        t = tm.create_transaction()
        a = tm.create_transaction(t)
        tm.create_transaction(a)
        tm.create_transaction(t)
        assert t.tree_size() == 4
        assert t.tree_depth() == 3

    def test_nesting_under_finished_rejected(self, tm):
        t = tm.create_transaction()
        tm.commit_transaction(t)
        with pytest.raises(TransactionStateError):
            tm.create_transaction(t)

    def test_ids_unique(self, tm):
        ids = {tm.create_transaction().txn_id for _ in range(10)}
        assert len(ids) == 10


class TestCommit:
    def test_commit_sets_state(self, tm):
        t = tm.create_transaction()
        tm.commit_transaction(t)
        assert t.state == COMMITTED
        assert t.is_finished()

    def test_commit_twice_rejected(self, tm):
        t = tm.create_transaction()
        tm.commit_transaction(t)
        with pytest.raises(TransactionStateError):
            tm.commit_transaction(t)

    def test_commit_with_active_children_rejected(self, tm):
        t = tm.create_transaction()
        tm.create_transaction(t)
        with pytest.raises(TransactionStateError):
            tm.commit_transaction(t)

    def test_commit_after_children_finish(self, tm):
        t = tm.create_transaction()
        c = tm.create_transaction(t)
        tm.commit_transaction(c)
        tm.commit_transaction(t)
        assert t.state == COMMITTED

    def test_top_commit_releases_locks(self, tm):
        t = tm.create_transaction()
        res = LockResource.for_class("C")
        tm.locks.acquire(t, res, LockMode.X)
        tm.commit_transaction(t)
        assert tm.locks.resource_count() == 0

    def test_nested_commit_inherits_locks(self, tm):
        t = tm.create_transaction()
        c = tm.create_transaction(t)
        res = LockResource.for_class("C")
        tm.locks.acquire(c, res, LockMode.X)
        tm.commit_transaction(c)
        assert tm.locks.mode_held(t, res) == LockMode.X

    def test_nested_commit_merges_undo_log(self, tm):
        t = tm.create_transaction()
        c = tm.create_transaction(t)
        marker = []
        c.log_undo(CallbackUndo(lambda: marker.append("undone")))
        tm.commit_transaction(c)
        assert len(t.undo_log) == 1
        tm.abort_transaction(t)
        assert marker == ["undone"]

    def test_on_commit_hooks_run_at_top_level_only(self, tm):
        t = tm.create_transaction()
        c = tm.create_transaction(t)
        ran = []
        c.on_commit.append(lambda txn: ran.append("child"))
        tm.commit_transaction(c)
        assert ran == []  # not yet permanent
        tm.commit_transaction(t)
        assert ran == ["child"]

    def test_on_commit_hooks_dropped_on_later_abort(self, tm):
        t = tm.create_transaction()
        c = tm.create_transaction(t)
        ran = []
        c.on_commit.append(lambda txn: ran.append("child"))
        tm.commit_transaction(c)
        tm.abort_transaction(t)
        assert ran == []

    def test_stats(self, tm):
        t = tm.create_transaction()
        c = tm.create_transaction(t)
        tm.commit_transaction(c)
        tm.commit_transaction(t)
        assert tm.stats["committed"] == 2
        assert tm.stats["top_level_committed"] == 1


class TestAbort:
    def test_abort_sets_state(self, tm):
        t = tm.create_transaction()
        tm.abort_transaction(t)
        assert t.state == ABORTED

    def test_abort_idempotent(self, tm):
        t = tm.create_transaction()
        tm.abort_transaction(t)
        tm.abort_transaction(t)  # no exception

    def test_abort_committed_rejected(self, tm):
        t = tm.create_transaction()
        tm.commit_transaction(t)
        with pytest.raises(TransactionStateError):
            tm.abort_transaction(t)

    def test_abort_replays_undo_in_reverse(self, tm):
        t = tm.create_transaction()
        order = []
        t.log_undo(CallbackUndo(lambda: order.append(1)))
        t.log_undo(CallbackUndo(lambda: order.append(2)))
        tm.abort_transaction(t)
        assert order == [2, 1]

    def test_abort_restores_store_state(self, tm):
        store = seeded_store()
        t = tm.create_transaction()
        delta1 = store.insert("C", {"v": 1})
        t.log_undo(DeltaUndo(store, delta1))
        delta2 = store.update(delta1.oid, {"v": 2})
        t.log_undo(DeltaUndo(store, delta2))
        tm.abort_transaction(t)
        assert store.extent("C") == []

    def test_abort_cascades_to_active_children(self, tm):
        t = tm.create_transaction()
        c = tm.create_transaction(t)
        g = tm.create_transaction(c)
        tm.abort_transaction(t)
        assert c.state == ABORTED
        assert g.state == ABORTED

    def test_abort_discards_committed_child_effects(self, tm):
        store = seeded_store()
        t = tm.create_transaction()
        c = tm.create_transaction(t)
        delta = store.insert("C", {"v": 1})
        c.log_undo(DeltaUndo(store, delta))
        tm.commit_transaction(c)
        assert len(store.extent("C")) == 1
        tm.abort_transaction(t)
        assert store.extent("C") == []

    def test_child_abort_keeps_parent_effects(self, tm):
        store = seeded_store()
        t = tm.create_transaction()
        delta = store.insert("C", {"v": 1})
        t.log_undo(DeltaUndo(store, delta))
        c = tm.create_transaction(t)
        delta2 = store.insert("C", {"v": 2})
        c.log_undo(DeltaUndo(store, delta2))
        tm.abort_transaction(c)
        assert len(store.extent("C")) == 1
        assert t.state == ACTIVE
        tm.commit_transaction(t)
        assert len(store.extent("C")) == 1

    def test_abort_releases_locks(self, tm):
        t = tm.create_transaction()
        tm.locks.acquire(t, LockResource.for_class("C"), LockMode.X)
        tm.abort_transaction(t)
        assert tm.locks.resource_count() == 0

    def test_on_abort_hooks_run(self, tm):
        t = tm.create_transaction()
        ran = []
        t.on_abort.append(lambda txn: ran.append(txn.txn_id))
        tm.abort_transaction(t)
        assert ran == [t.txn_id]

    def test_deferred_sets_discarded_on_abort(self, tm):
        t = tm.create_transaction()
        t.add_deferred_condition(("rule", "signal"))
        t.add_deferred_action(("rule", "signal", "outcome", "firing"))
        tm.abort_transaction(t)
        assert not t.has_deferred_work()


class TestCommitEventSink:
    def test_commit_signals_before_finalizing(self, tm):
        states = []
        tm.event_sink = lambda kind, txn: states.append((kind, txn.state))
        t = tm.create_transaction()
        tm.commit_transaction(t)
        assert ("begin", ACTIVE) in states
        assert ("commit", "committing") in states

    def test_failing_commit_sink_aborts(self, tm):
        def sink(kind, txn):
            if kind == "commit":
                raise RuntimeError("deferred work failed")
        tm.event_sink = sink
        t = tm.create_transaction()
        with pytest.raises(RuntimeError):
            tm.commit_transaction(t)
        assert t.state == ABORTED

    def test_abort_signalled(self, tm):
        kinds = []
        tm.event_sink = lambda kind, txn: kinds.append(kind)
        t = tm.create_transaction()
        tm.abort_transaction(t)
        assert kinds == ["begin", "abort"]

    def test_signals_can_be_disabled(self, tm):
        kinds = []
        tm.event_sink = lambda kind, txn: kinds.append(kind)
        tm.signal_transaction_events = False
        t = tm.create_transaction()
        tm.commit_transaction(t)
        assert kinds == []

    def test_live_transactions_tracking(self, tm):
        t = tm.create_transaction()
        assert t in tm.live_transactions()
        tm.commit_transaction(t)
        assert t not in tm.live_transactions()
