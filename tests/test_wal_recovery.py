"""Crash-recovery tests: WAL format, crash-point sweep, fault injection,
checkpointing, and restart continuity.

The central property (ISSUE 2 acceptance): killing the system after *any*
WAL record and recovering must yield exactly the state produced by the
committed top-level transactions in the surviving prefix — no lost
committed effects, no resurrected aborted/uncommitted effects, and
deferred-rule effects (which per §6.3 ran inside the committing
transaction) replayed atomically with their commit.
"""

import pytest

from repro import (
    Action,
    ClassDef,
    Condition,
    HiPAC,
    Rule,
    attributes,
    on_update,
)
from repro.recovery import (
    FaultingWAL,
    InjectedCrash,
    corrupt_record,
    has_durable_state,
    load_checkpoint,
    read_wal_records,
    recover,
    truncated_copy,
)
from repro.recovery.wal import wal_files
from repro.rules.coupling import DEFERRED, IMMEDIATE
from repro.storage import encode_frame
from repro.rules.rule import RULE_CLASS


def stock_class():
    return ClassDef("Stock", attributes("symbol", ("price", "number")))


def audit_class():
    return ClassDef("Audit", attributes("note"))


def build_rules():
    """A fresh rule library (Rule objects are mutated on registration, so
    every recovery needs its own instances)."""
    return [Rule(
        name="audit-price",
        event=on_update("Stock"),
        condition=Condition.true(),
        action=Action.call(
            lambda ctx: ctx.create("Audit", {"note": "price-change"})),
        ec_coupling=DEFERRED,
        ca_coupling=IMMEDIATE,
    )]


def make_durable_db(data_dir, **kwargs):
    kwargs.setdefault("wal_fsync", False)  # sweeps don't need real fsyncs
    return HiPAC(lock_timeout=2.0, durability="wal", data_dir=data_dir,
                 **kwargs)


def run_workload(db):
    """A mixed workload: DDL, creates, deferred rule firings, an explicit
    abort, nested commit + nested abort (compensation records), rule
    create/drop.  Returns ``[(lsn, snapshot)]`` captured at every point
    where the durable state legally changes (each top-level outcome)."""
    captures = [(db.wal.last_lsn, db.store.snapshot_state())]

    def cap():
        captures.append((db.wal.last_lsn, db.store.snapshot_state()))

    db.define_class(stock_class())
    cap()
    db.define_class(audit_class())
    cap()
    db.create_rule(build_rules()[0])
    cap()

    with db.transaction() as t:
        ibm = db.create("Stock", {"symbol": "IBM", "price": 10.0}, t)
        dec = db.create("Stock", {"symbol": "DEC", "price": 20.0}, t)
    cap()

    # Deferred rule firing: the Audit row is created inside the committing
    # transaction (§6.3), so its delta precedes the commit record.
    with db.transaction() as t:
        db.update(ibm, {"price": 11.0}, t)
    cap()

    # Explicit top-level abort: none of this may survive recovery.
    t = db.begin()
    db.create("Stock", {"symbol": "BAD", "price": 0.0}, t)
    db.update(dec, {"price": 999.0}, t)
    db.abort(t)
    cap()

    # Nested: committed child + aborted child (compensation records) under
    # a committing top level.
    t = db.begin()
    child = db.begin(t)
    db.update(dec, {"price": 21.0}, child)
    db.commit(child)
    doomed = db.begin(t)
    db.create("Stock", {"symbol": "TMP", "price": 1.0}, doomed)
    db.update(dec, {"price": 1000.0}, doomed)
    db.abort(doomed)
    db.update(dec, {"price": 22.0}, t)
    db.commit(t)
    cap()

    db.delete_rule("audit-price")
    cap()

    db.define_class(ClassDef("Temp", attributes("x")))
    cap()
    db.drop_class("Temp")
    cap()

    with db.transaction() as t:
        db.update(ibm, {"price": 12.5}, t)
    cap()
    return captures


def oracle(captures, lsn):
    """The committed state as of ``lsn``: the last capture at or below it."""
    state = captures[0][1]
    for captured_lsn, snapshot in captures:
        if captured_lsn <= lsn:
            state = snapshot
    return state


def sweep(src, captures, tmp_path, torn_tail=False):
    """Recover every WAL prefix of ``src`` and compare to the oracle.

    ``torn_tail=True`` additionally leaves half of the next record's
    frame at every truncation point — a mid-frame tear the scanner must
    drop without disturbing the preceding prefix.
    """
    records, _ = read_wal_records(src)
    checkpoint = load_checkpoint(src)
    base_lsn = checkpoint["lsn"] if checkpoint is not None else 0
    assert records, "workload produced no WAL records"
    for n in range(len(records) + 1):
        lsn = records[n - 1]["lsn"] if n else base_lsn
        prefix_dir = truncated_copy(src, tmp_path / ("prefix%d" % n), n,
                                    torn_tail=torn_tail)
        recovered = recover(prefix_dir, rules=build_rules(), durability=None)
        assert recovered.store.snapshot_state() == oracle(captures, lsn), (
            "prefix of %d records (lsn %d) diverged from committed state"
            % (n, lsn))


class TestWalFormat:
    def test_reader_returns_only_valid_prefix(self, tmp_path):
        db = make_durable_db(tmp_path / "d")
        db.define_class(stock_class())
        with db.transaction() as t:
            db.create("Stock", {"symbol": "IBM", "price": 1.0}, t)
        db.close()
        records, discarded = read_wal_records(tmp_path / "d")
        assert discarded == 0
        assert [r["type"] for r in records[:2]] == ["begin", "delta"]
        assert all(r1["lsn"] < r2["lsn"]
                   for r1, r2 in zip(records, records[1:]))

    def test_reader_stops_at_corrupt_record(self, tmp_path):
        db = make_durable_db(tmp_path / "d")
        db.define_class(stock_class())
        with db.transaction() as t:
            db.create("Stock", {"symbol": "IBM", "price": 1.0}, t)
        db.close()
        records, _ = read_wal_records(tmp_path / "d")
        corrupt_record(tmp_path / "d", 3)
        surviving, discarded = read_wal_records(tmp_path / "d")
        assert [r["lsn"] for r in surviving] == [r["lsn"] for r in records[:3]]
        assert discarded > 0

    def test_torn_tail_is_dropped(self, tmp_path):
        db = make_durable_db(tmp_path / "d")
        db.define_class(stock_class())
        db.close()
        records, _ = read_wal_records(tmp_path / "d")
        assert records
        # Append half of a plausible next frame: a mid-write kill.
        frame = encode_frame({"lsn": records[-1]["lsn"] + 1,
                              "type": "begin", "txn": "t99",
                              "sphere": "t99", "data": {}})
        with open(wal_files(tmp_path / "d")[-1], "ab") as handle:
            handle.write(frame[: len(frame) // 2])
        surviving, discarded = read_wal_records(tmp_path / "d")
        assert len(surviving) == len(records)
        assert discarded > 0


class TestCrashSweep:
    def test_recovery_equals_committed_prefix_at_every_record(self, tmp_path):
        db = make_durable_db(tmp_path / "src")
        captures = run_workload(db)
        db.close()
        sweep(tmp_path / "src", captures, tmp_path)

    def test_recovery_tolerates_torn_tail_at_every_record(self, tmp_path):
        # Same sweep, but every truncation point ends in a mid-frame
        # tear (half of record N+1): the scanner must drop the tear and
        # recover exactly the clean-prefix state.
        db = make_durable_db(tmp_path / "src")
        captures = run_workload(db)
        db.close()
        sweep(tmp_path / "src", captures, tmp_path, torn_tail=True)

    def test_sweep_with_mid_workload_checkpoint(self, tmp_path):
        db = make_durable_db(tmp_path / "src")
        db.define_class(stock_class())
        db.define_class(audit_class())
        db.create_rule(build_rules()[0])
        with db.transaction() as t:
            ibm = db.create("Stock", {"symbol": "IBM", "price": 10.0}, t)
        assert db.checkpoint()
        # Everything before the checkpoint is now in the snapshot, not the
        # (truncated) WAL; the sweep's base state is the checkpoint.
        captures = [(db.wal.last_lsn, db.store.snapshot_state())]
        with db.transaction() as t:
            db.update(ibm, {"price": 11.0}, t)
        captures.append((db.wal.last_lsn, db.store.snapshot_state()))
        t = db.begin()
        db.create("Stock", {"symbol": "BAD", "price": 0.0}, t)
        db.abort(t)
        captures.append((db.wal.last_lsn, db.store.snapshot_state()))
        with db.transaction() as t:
            db.update(ibm, {"price": 12.0}, t)
        captures.append((db.wal.last_lsn, db.store.snapshot_state()))
        db.close()
        sweep(tmp_path / "src", captures, tmp_path)

    def test_corrupt_record_truncates_recovery_to_its_prefix(self, tmp_path):
        db = make_durable_db(tmp_path / "src")
        captures = run_workload(db)
        db.close()
        src = tmp_path / "src"
        records, _ = read_wal_records(src)
        index = len(records) // 2
        corrupt_record(src, index)
        recovered = recover(src, rules=build_rules(), durability=None)
        assert recovered.store.snapshot_state() == oracle(
            captures, records[index - 1]["lsn"])


def attach_wal(db, wal):
    db.wal = wal
    db.transaction_manager.wal = wal
    db.object_manager.wal = wal
    db.rule_manager.wal = wal


class TestFaultInjection:
    def test_commit_crash_aborts_and_releases_locks(self, tmp_path):
        # Satellite fix: a failure in the commit *resume* phase (the WAL
        # force) must not strand the transaction in COMMITTING with its
        # locks held — it aborts, rolls back, and re-raises.
        db = HiPAC(lock_timeout=2.0)
        db.define_class(stock_class())
        before = db.store.snapshot_state()
        # fail_after=2: begin + create delta succeed, the commit append dies.
        attach_wal(db, FaultingWAL(tmp_path / "d", fail_after=2))
        txn = db.begin()
        db.create("Stock", {"symbol": "IBM", "price": 1.0}, txn)
        with pytest.raises(InjectedCrash):
            db.commit(txn)
        assert txn.state == "aborted"
        assert db.store.snapshot_state() == before
        assert db.locks.resource_count() == 0
        assert db.wal.stats["append_failures"] >= 1
        # The in-memory system stays usable once the dead log is detached.
        attach_wal(db, None)
        with db.transaction() as t:
            db.create("Stock", {"symbol": "DEC", "price": 2.0}, t)
        assert len(db.store.snapshot_state()["Stock"]) == 1

    def test_commit_crash_recovers_to_committed_prefix(self, tmp_path):
        db = HiPAC(lock_timeout=2.0)
        wal = FaultingWAL(tmp_path / "d", fail_after=100)
        attach_wal(db, wal)
        db.define_class(stock_class())  # logged: recovery needs the class
        with db.transaction() as t:
            db.create("Stock", {"symbol": "IBM", "price": 1.0}, t)
        committed = db.store.snapshot_state()
        wal.fail_after = wal.stats["records"] + 2  # dies at the next commit
        txn = db.begin()
        db.create("Stock", {"symbol": "DEC", "price": 2.0}, txn)
        with pytest.raises(InjectedCrash):
            db.commit(txn)
        recovered = recover(tmp_path / "d", durability=None)
        snapshot = recovered.store.snapshot_state()
        assert snapshot["Stock"] == committed["Stock"]

    def test_fsync_crash_loses_the_unforced_sphere(self, tmp_path):
        # Satellite 2: crash *between* the batch write and the fsync.
        # The commit record reaches the OS but durability is never
        # confirmed, so the transaction aborts and recovery discards
        # the sphere (the best-effort abort record wins the fate scan).
        db = HiPAC(lock_timeout=2.0)
        wal = FaultingWAL(tmp_path / "d", fail_fsync_after=2, fsync=True)
        attach_wal(db, wal)
        db.define_class(stock_class())  # sync #1
        with db.transaction() as t:     # sync #2
            db.create("Stock", {"symbol": "IBM", "price": 1.0}, t)
        committed = db.store.snapshot_state()
        txn = db.begin()
        db.create("Stock", {"symbol": "DEC", "price": 2.0}, txn)
        with pytest.raises(InjectedCrash):
            db.commit(txn)  # sync #3 dies after the flush
        assert txn.state == "aborted"
        # Flush the best-effort abort record (a clean shutdown would);
        # the fate scan then sees commit-then-abort and discards it.
        wal.close()
        recovered = recover(tmp_path / "d", durability=None)
        assert (recovered.store.snapshot_state()["Stock"]
                == committed["Stock"])

    def test_nested_commit_crash_aborts_child_only(self, tmp_path):
        db = HiPAC(lock_timeout=2.0)
        db.define_class(stock_class())
        wal = FaultingWAL(tmp_path / "d", fail_after=100)
        attach_wal(db, wal)
        parent = db.begin()
        ibm = db.create("Stock", {"symbol": "IBM", "price": 1.0}, parent)
        child = db.begin(parent)
        db.update(ibm, {"price": 2.0}, child)
        wal.fail_after = wal.stats["records"]  # next append dies
        with pytest.raises(InjectedCrash):
            db.commit(child)
        assert child.state == "aborted"
        assert parent.state == "active"
        assert db.store.get(ibm).snapshot()["price"] == 1.0
        attach_wal(db, None)
        db.abort(parent)
        assert db.locks.resource_count() == 0


class TestCheckpointer:
    def test_interval_checkpoint_truncates_wal(self, tmp_path):
        db = make_durable_db(tmp_path / "d", checkpoint_interval=5)
        db.define_class(stock_class())
        for i in range(5):
            with db.transaction() as t:
                db.create("Stock", {"symbol": "S%d" % i, "price": 1.0}, t)
        db.close()
        assert db.stats()["recovery"]["checkpoints"] >= 1
        checkpoint = load_checkpoint(tmp_path / "d")
        assert checkpoint is not None
        records, _ = read_wal_records(tmp_path / "d")
        assert all(r["lsn"] > checkpoint["lsn"] for r in records)

    def test_checkpoint_refused_while_transactions_live(self, tmp_path):
        db = make_durable_db(tmp_path / "d")
        db.define_class(stock_class())
        txn = db.begin()
        db.create("Stock", {"symbol": "IBM", "price": 1.0}, txn)
        assert db.checkpoint() is False
        assert db.stats()["recovery"]["checkpoints_skipped"] == 1
        db.commit(txn)
        assert db.checkpoint() is True
        db.close()

    def test_checkpoint_restart_restores_state_and_oid_floor(self, tmp_path):
        db = make_durable_db(tmp_path / "d")
        db.define_class(stock_class())
        with db.transaction() as t:
            db.create("Stock", {"symbol": "IBM", "price": 1.0}, t)
        assert db.checkpoint()
        with db.transaction() as t:
            db.create("Stock", {"symbol": "DEC", "price": 2.0}, t)
        state = db.store.snapshot_state()
        db.close()
        db2 = make_durable_db(tmp_path / "d")
        assert db2.store.snapshot_state()["Stock"] == state["Stock"]
        with db2.transaction() as t:
            oid = db2.create("Stock", {"symbol": "NEW", "price": 3.0}, t)
        existing = set(state["Stock"])
        assert oid not in existing
        db2.close()


class TestRestart:
    def test_restart_survives_and_rebinds_rules(self, tmp_path):
        db = make_durable_db(tmp_path / "d")
        run_workload(db)
        final = db.store.snapshot_state()
        db.close()

        db2 = make_durable_db(tmp_path / "d", rule_library=build_rules())
        assert db2.store.snapshot_state() == final
        report = db2.recovery_report()
        assert report is not None
        assert report.replayed_spheres > 0
        # Recovery checkpointed immediately: the old log is absorbed, so a
        # second restart replays nothing from the WAL.
        assert load_checkpoint(tmp_path / "d") is not None
        db2.close()

    def test_rebound_rule_fires_after_restart(self, tmp_path):
        db = make_durable_db(tmp_path / "d")
        db.define_class(stock_class())
        db.define_class(audit_class())
        db.create_rule(build_rules()[0])
        with db.transaction() as t:
            ibm = db.create("Stock", {"symbol": "IBM", "price": 1.0}, t)
        db.close()

        db2 = make_durable_db(tmp_path / "d", rule_library=build_rules())
        assert db2.rule_names() == ["audit-price"]
        audits_before = len(db2.store.snapshot_state().get("Audit", {}))
        with db2.transaction() as t:
            db2.update(ibm, {"price": 2.0}, t)
        audits_after = len(db2.store.snapshot_state().get("Audit", {}))
        assert audits_after == audits_before + 1
        db2.close()

    def test_unbound_rules_are_reported_not_registered(self, tmp_path):
        db = make_durable_db(tmp_path / "d")
        db.define_class(stock_class())
        db.define_class(audit_class())
        db.create_rule(build_rules()[0])
        db.close()

        db2 = make_durable_db(tmp_path / "d")  # no rule_library
        assert db2.rule_names() == []
        assert db2.recovery_report().rules_unbound == ["audit-price"]
        # The rule's row survived; re-supplying the library next restart
        # rebinds it.
        assert len(db2.store.snapshot_state()[RULE_CLASS]) == 1
        db2.close()
        db3 = make_durable_db(tmp_path / "d", rule_library=build_rules())
        assert db3.rule_names() == ["audit-price"]
        db3.close()

    def test_fresh_directory_has_no_durable_state(self, tmp_path):
        assert not has_durable_state(tmp_path / "nothing")
        db = make_durable_db(tmp_path / "d")
        db.define_class(stock_class())
        db.close()
        assert has_durable_state(tmp_path / "d")


class TestStatsAndDefaults:
    def test_storage_stats_present_in_memory_mode(self):
        db = HiPAC(lock_timeout=2.0)
        storage = db.stats()["storage"]
        assert storage["wal_records"] == 0
        assert db.stats()["recovery"]["replays"] == 0
        assert db.wal is None and db.checkpointer is None

    def test_storage_stats_count_wal_activity(self, tmp_path):
        db = HiPAC(lock_timeout=2.0, durability="wal",
                   data_dir=tmp_path / "d")
        db.define_class(stock_class())
        with db.transaction() as t:
            db.create("Stock", {"symbol": "IBM", "price": 1.0}, t)
        storage = db.stats()["storage"]
        assert storage["wal_records"] > 0
        assert storage["wal_commits_forced"] == 2
        assert storage["wal_fsyncs"] == 2
        db.close()

    def test_unknown_durability_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            HiPAC(durability="paper-tape", data_dir=tmp_path / "d")
        with pytest.raises(ValueError):
            HiPAC(durability="wal")
