"""Unit tests for smaller pieces: tracer internals, firing log, index set,
manual fire couplings, SAA program units, workload helpers."""

import threading

import pytest

from repro import (
    Action,
    ClassDef,
    Condition,
    HiPAC,
    Rule,
    attributes,
    on_create,
)
from repro.core.tracing import NullTracer, Trace, TraceRecord, Tracer
from repro.rules.firing import FiringLog, RuleFiring


class TestTracer:
    def test_records_only_when_enabled(self):
        tracer = Tracer()
        tracer.record("A", "B", "op")
        assert tracer.snapshot().records == []
        tracer.start()
        tracer.record("A", "B", "op")
        assert len(tracer.stop().records) == 1

    def test_stop_clears(self):
        tracer = Tracer()
        tracer.start()
        tracer.record("A", "B", "op")
        tracer.stop()
        tracer.start()
        assert tracer.snapshot().records == []
        tracer.stop()

    def test_sequence_numbers_monotone(self):
        tracer = Tracer()
        tracer.start()
        for i in range(5):
            tracer.record("A", "B", "op%d" % i)
        trace = tracer.stop()
        assert [r.seq for r in trace.records] == [1, 2, 3, 4, 5]

    def test_thread_safety(self):
        tracer = Tracer()
        tracer.start()

        def worker():
            for _ in range(200):
                tracer.record("A", "B", "op")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        trace = tracer.stop()
        assert len(trace.records) == 800
        assert len({r.seq for r in trace.records}) == 800

    def test_null_tracer_never_starts(self):
        tracer = NullTracer()
        with pytest.raises(RuntimeError):
            tracer.start()
        tracer.record("A", "B", "op")  # silently ignored

    def test_trace_helpers(self):
        trace = Trace([
            TraceRecord(1, "A", "B", "x"),
            TraceRecord(2, "B", "C", "y"),
            TraceRecord(3, "A", "B", "x"),
        ])
        assert trace.count(source="A") == 2
        assert trace.count(operation="y") == 1
        assert trace.edge_set() == {("A", "B"), ("B", "C")}
        assert trace.operations() == ["x", "y", "x"]
        assert trace.subsequence([("A", "B", "x"), ("B", "C", "y")])
        assert not trace.subsequence([("B", "C", "y"), ("B", "C", "y")])


class TestFiringLog:
    def test_capacity_bounded(self):
        log = FiringLog(capacity=3)
        for i in range(5):
            log.append(RuleFiring("r%d" % i, "e", "immediate", "immediate"))
        assert len(log) == 3
        assert log.all()[0].rule_name == "r2"

    def test_counters(self):
        log = FiringLog()
        log.append(RuleFiring("a", "e", "immediate", "immediate",
                              satisfied=True, executed=True))
        log.append(RuleFiring("b", "e", "immediate", "immediate",
                              satisfied=False))
        assert log.satisfied_count() == 1
        assert log.executed_count() == 1

    def test_clear(self):
        log = FiringLog()
        log.append(RuleFiring("a", "e", "immediate", "immediate"))
        log.clear()
        assert len(log) == 0


class TestManualFireCouplings:
    @pytest.fixture
    def db(self):
        database = HiPAC(lock_timeout=2.0)
        database.define_class(ClassDef("Doc", attributes("title")))
        return database

    def test_fire_deferred_rule_defers_to_commit(self, db):
        ran = []
        db.create_rule(Rule(
            name="r", event=on_create("Doc"), condition=Condition.true(),
            action=Action.call(lambda ctx: ran.append(1)),
            ec_coupling="deferred"))
        txn = db.begin()
        db.fire_rule("r", txn)
        assert ran == []
        db.commit(txn)
        assert ran == [1]

    def test_fire_separate_rule_runs_async(self, db):
        ran = []
        db.create_rule(Rule(
            name="r", event=on_create("Doc"), condition=Condition.true(),
            action=Action.call(lambda ctx: ran.append(1)),
            ec_coupling="separate"))
        with db.transaction() as txn:
            db.fire_rule("r", txn)
        db.drain()
        assert ran == [1]


class TestIndexSet:
    def test_len_and_keys(self):
        from repro.objstore.index import HashIndex
        from repro.objstore.objects import OID
        index = HashIndex("C", "a")
        index.insert("x", OID("C", 1))
        index.insert("x", OID("C", 2))
        index.insert("y", OID("C", 3))
        assert len(index) == 3
        assert set(index.keys()) == {"x", "y"}
        index.remove("x", OID("C", 1))
        assert index.lookup("x") == {OID("C", 2)}
        index.remove("zzz", OID("C", 9))  # absent bucket: no-op

    def test_unhashable_values_frozen(self):
        from repro.objstore.index import HashIndex
        from repro.objstore.objects import OID
        index = HashIndex("C", "tags")
        index.insert(["a", "b"], OID("C", 1))
        assert index.lookup(["a", "b"]) == {OID("C", 1)}


class TestSAAUnits:
    def test_trader_slippage(self):
        from repro.saa import SecuritiesAssistant
        from repro.saa.programs import Trader
        db = HiPAC(lock_timeout=2.0)
        saa = SecuritiesAssistant(db, coupling="immediate")
        app = db.application("trader:SLIP")
        trader = Trader(app, "SLIP", fill_price_slippage=0.05)
        saa.traders["SLIP"] = trader
        reply = trader.execute_trade(symbol="X", shares=10, client="c",
                                     limit_price=50.0)
        assert reply["price"] == 50.05

    def test_display_thread_safety(self):
        from repro.saa import SecuritiesAssistant
        db = HiPAC(lock_timeout=2.0)
        saa = SecuritiesAssistant(db, coupling="immediate")
        display = saa.add_display("a")

        def worker():
            for i in range(100):
                display.display_price_quote("X", float(i))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(display.ticker_window) == 400


class TestWorkloadSymbolRules:
    def test_make_symbol_rules_fire_per_symbol(self):
        from repro.workloads import make_symbol_rules
        from benchmarks.conftest import make_db
        db = make_db()
        hits = []
        rules = make_symbol_rules(["AAA", "BBB"], limit=10.0,
                                  sink=lambda ctx: hits.append(1))
        for rule in rules:
            db.create_rule(rule)
        with db.transaction() as txn:
            a = db.create("Stock", {"symbol": "AAA", "price": 5.0}, txn)
        with db.transaction() as txn:
            db.update(a, {"price": 20.0}, txn)
        assert hits == [1]  # only the AAA watcher's condition held
