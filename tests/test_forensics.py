"""Tests for the incident-forensics layer: the black-box snapshot
recorder (:mod:`repro.obs.forensics`), the ``doctor`` diagnosis engine
(:mod:`repro.tools.doctor`), and the admin server's ``/alerts`` and
``/forensics`` endpoints.

The headline scenario is the acceptance criterion: an induced rule storm
must produce a snapshot bundle whose doctor report names the storming
rule as the top finding and emits a ``replay --until SEQ`` command with
SEQ inside the incident's journal range.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import (
    Action,
    ClassDef,
    Condition,
    HiPAC,
    Rule,
    attributes,
    on_create,
    on_update,
)
from repro.obs.flightrec import read_journal
from repro.obs.forensics import ForensicsConfig, ForensicsRecorder
from repro.obs.watchdog import RULE_STORM, WatchdogConfig
from repro.tools import doctor
from repro.tools import top as top_tool


def _db(tmp_path, **kwargs) -> HiPAC:
    kwargs.setdefault("lock_timeout", 2.0)
    kwargs.setdefault("data_dir", tmp_path)
    kwargs.setdefault("forensics", True)
    db = HiPAC(**kwargs)
    db.define_class(ClassDef("A", attributes(("v", "int"))))
    return db


def _wait_for(predicate, timeout: float = 10.0) -> bool:
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


def _get(url: str):
    try:
        with urllib.request.urlopen(url, timeout=5.0) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


class TestForensicsRecorder:
    def test_concurrent_same_kind_triggers_yield_one_bundle(self, tmp_path):
        """Two (here: eight) breaches of the same kind inside the
        debounce window must yield exactly one bundle — the per-kind
        check-and-set is atomic under the recorder lock."""
        db = _db(tmp_path,
                 forensics=ForensicsConfig(debounce_seconds=3600.0))
        try:
            recorder = db.forensics
            accepted = []
            barrier = threading.Barrier(8)

            def breach():
                barrier.wait()
                if recorder.trigger(RULE_STORM, reason="synthetic breach"):
                    accepted.append(1)

            threads = [threading.Thread(target=breach) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len(accepted) == 1
            assert _wait_for(
                lambda: recorder.stats_snapshot()["captures"] == 1)
            snapshot = recorder.stats_snapshot()
            assert snapshot["debounced"] == 7
            bundles = recorder.list_bundles()
            assert len(bundles) == 1
            assert bundles[0]["kind"] == RULE_STORM
        finally:
            db.close()

    def test_manual_capture_bypasses_debounce(self, tmp_path):
        db = _db(tmp_path,
                 forensics=ForensicsConfig(debounce_seconds=3600.0))
        try:
            first = db.forensics.capture(reason="one")
            second = db.forensics.capture(reason="two")
            assert first and second and first != second
            assert db.forensics.stats_snapshot()["captures"] == 2
        finally:
            db.close()

    def test_capture_error_counts_and_never_propagates(self, tmp_path):
        """A capture-thread exception increments the error counter and
        never reaches the signalling thread."""
        db = _db(tmp_path)
        try:
            recorder = db.forensics

            def explode(kind, reason, alert):
                raise RuntimeError("synthetic capture failure")

            recorder._build_bundle = explode
            # The signalling side: trigger() must return normally.
            assert recorder.trigger(RULE_STORM, reason="will fail")
            assert _wait_for(
                lambda: recorder.stats_snapshot()["capture_errors"] == 1)
            snapshot = recorder.stats_snapshot()
            assert snapshot["captures"] == 0
            assert db.metrics.counter(
                "forensics_capture_errors_total").value == 1
            # The worker survives the error: a healthy capture after the
            # failure still lands.
            del recorder.__dict__["_build_bundle"]
            assert recorder.capture(reason="recovered")
            assert recorder.stats_snapshot()["captures"] == 1
        finally:
            db.close()

    def test_eviction_soak_keeps_disk_under_budget(self, tmp_path):
        config = ForensicsConfig(
            debounce_seconds=0.0, max_bundles=500,
            # trim the per-bundle rings so the soak stays fast
            timeseries_last=5, alerts_last=10, slowlog_last=10,
            firings_last=10, profile_top=5)
        db = _db(tmp_path, forensics=config)
        try:
            # Bundle size depends on how many threads are alive in this
            # process (stack dumps), so size the budget from a probe
            # capture: room for ~4 bundles, far fewer than the 50 the
            # soak writes.
            probe = ForensicsRecorder(db, tmp_path / "probe",
                                      config=config)
            probe.capture(reason="probe")
            budget = 4 * probe.stats_snapshot()["bytes"]
            probe.close()
            recorder = ForensicsRecorder(
                db, tmp_path,
                config=ForensicsConfig(
                    debounce_seconds=0.0, disk_budget_bytes=budget,
                    max_bundles=500, timeseries_last=5, alerts_last=10,
                    slowlog_last=10, firings_last=10, profile_top=5))
            for index in range(50):
                assert recorder.capture(reason="soak %d" % index)
            snapshot = recorder.stats_snapshot()
            assert snapshot["captures"] == 50
            assert snapshot["evicted"] > 0
            assert snapshot["bundles"] < 50
            on_disk = sum(
                path.stat().st_size
                for path in recorder.directory.glob("forensic-*.json"))
            assert on_disk <= budget
            assert snapshot["bytes"] == on_disk
            # Newest-first listing survives eviction, newest is intact.
            bundles = recorder.list_bundles()
            assert bundles[0]["seq"] == 50
            assert recorder.load_bundle(bundles[0]["id"])["reason"] \
                == "soak 49"
            recorder.close()
        finally:
            db.close()

    def test_bundle_covers_the_diagnosis_surface(self, tmp_path):
        db = _db(tmp_path, flight_recorder=True)
        try:
            db.create_rule(Rule(
                name="R", event=on_create("A"), condition=Condition.true(),
                action=Action.call(lambda ctx: None)))
            with db.transaction() as txn:
                db.create("A", {"v": 1}, txn)
            bundle_id = db.forensics.capture(reason="surface check")
            bundle = db.forensics.load_bundle(bundle_id)
            assert bundle["format"] == "hipac-forensics/1"
            assert bundle["kind"] == "manual"
            assert bundle["stats"]["rules"]["triggered"] >= 1
            assert bundle["health"]["status"] in ("ok", "degraded")
            assert bundle["profile"]["rules"]["R"]["firings"] == 1
            assert any(f["rule"] == "R" for f in bundle["firings"])
            assert bundle["envelope"]["uptime"] >= 0
            assert bundle["envelope"]["config"]["flight_recorder"] is True
            assert bundle["journal"]["last_seq"] >= 1
            assert "--until" in bundle["journal"]["replay_command"]
            # every live thread is dumped, including this one
            names = [dump["name"] for dump in bundle["threads"]]
            assert any("MainThread" in name for name in names)
            assert all(dump["stack"] for dump in bundle["threads"])
            # the numeric stats section survives the Prometheus floater
            text = db.prometheus_metrics()
            assert "forensics_captures" in text
        finally:
            db.close()

    def test_wal_append_failure_triggers_capture(self, tmp_path):
        db = _db(tmp_path, durability="wal")
        try:
            with db.transaction() as txn:
                db.create("A", {"v": 1}, txn)
            txn = db.begin()
            db.wal._writer.append = _raise_io  # break the log device
            # The abort path logs best-effort (append_safe): the failed
            # append flips wal.failed and fires the forensics hook.
            db.abort(txn)
            recorder = db.forensics
            assert _wait_for(
                lambda: recorder.stats_snapshot()["captures"] >= 1)
            bundles = recorder.list_bundles()
            assert any(bundle["kind"] == "wal_failure"
                       for bundle in bundles)
            loaded = recorder.load_bundle(bundles[0]["id"])
            findings = doctor.diagnose(loaded)
            assert findings[0].kind == "wal_failure"
            assert findings[0].severity == "critical"
        finally:
            db.close()

    def test_close_is_idempotent_and_stops_triggers(self, tmp_path):
        db = _db(tmp_path)
        recorder = db.forensics
        db.close()
        db.close()
        assert recorder.trigger(RULE_STORM, reason="after close") is False
        assert recorder.capture(reason="after close") is None


def _raise_io(*args, **kwargs):
    raise IOError("synthetic device failure")


class TestDoctor:
    def test_rule_storm_end_to_end(self, tmp_path):
        """Acceptance: induced storm -> bundle -> doctor names the
        storming rule on top, with a bisection seq inside the incident's
        journal range."""
        db = _db(tmp_path, flight_recorder=True,
                 watchdog=WatchdogConfig(rule_storm_rate=50.0,
                                         rule_storm_window=0.5,
                                         realert_interval=0.2))
        try:
            db.define_class(ClassDef("Stock", attributes(("price", "float"))))
            db.create_rule(Rule(
                name="stormer", event=on_update("Stock", attrs=["price"]),
                condition=Condition.true(),
                action=Action.call(lambda ctx: None)))
            db.create_rule(Rule(
                name="bystander", event=on_create("A"),
                condition=Condition.true(),
                action=Action.call(lambda ctx: None)))
            with db.transaction() as txn:
                db.create("A", {"v": 0}, txn)
                oid = db.create("Stock", {"price": 1.0}, txn)
            for index in range(300):
                with db.transaction() as txn:
                    db.update(oid, {"price": float(index)}, txn)
            db.drain()
            recorder = db.forensics
            assert _wait_for(
                lambda: recorder.stats_snapshot()["captures"] >= 1)
            bundles = recorder.list_bundles()
            assert bundles[0]["kind"] == RULE_STORM
            bundle = recorder.load_bundle(bundles[0]["id"])
        finally:
            db.close()
        findings = doctor.diagnose(bundle)
        top_finding = findings[0]
        assert top_finding.kind == RULE_STORM
        assert top_finding.rule == "stormer"
        assert top_finding.command and "--until" in top_finding.command
        seq = int(top_finding.command.rsplit(None, 1)[-1])
        records, _ = read_journal(tmp_path)
        seqs = [record["seq"] for record in records if "seq" in record]
        assert min(seqs) <= seq <= max(seqs)
        # the report renders and names the rule
        text = doctor.report(bundle, findings)
        assert "stormer" in text and "--until" in text

    def test_synthetic_bundle_heuristics(self):
        bundle = {
            "kind": "lock_wait",
            "wall": 1000.0,
            "health": {"status": "degraded"},
            "alerts": [
                {"kind": "lock_wait", "severity": "warning",
                 "message": "lock-wait p95 0.800s over last 40 waits",
                 "value": 0.8, "threshold": 0.2, "timestamp": 999.0},
                {"kind": "deferred_queue", "severity": "warning",
                 "message": "commit draining 600 deferred rule firings",
                 "value": 600.0, "threshold": 100.0, "timestamp": 999.5},
            ],
            "stats": {
                "locks": {"waited": 41, "timeouts": 2, "deadlocks": 0},
                "rules": {"deferred_queued": 600, "firing_errors": 0},
            },
            "profile": {"rules": {
                "hot_separate": {"separate": 30, "deferred": 0,
                                 "firings": 30},
                "hot_deferred": {"separate": 0, "deferred": 600,
                                 "firings": 600},
            }},
            "journal": {"last_seq": 77, "replay_command":
                        "python -m repro.tools.replay /d --diff --until 77"},
        }
        findings = doctor.diagnose(bundle)
        kinds = [finding.kind for finding in findings]
        assert "lock_wait" in kinds and "deferred_queue" in kinds
        by_kind = {finding.kind: finding for finding in findings}
        assert by_kind["lock_wait"].rule == "hot_separate"
        assert by_kind["deferred_queue"].rule == "hot_deferred"
        assert all(finding.journal_seq == 77 for finding in findings)
        # deferred breach (6x budget) outranks lock breach (4x)
        assert kinds.index("deferred_queue") < kinds.index("lock_wait")

    def test_wal_failure_is_critical_and_outranks_warnings(self):
        bundle = {
            "kind": "wal_failure", "wall": 1.0, "reason": "disk full",
            "health": {"status": "failing"},
            "alerts": [{"kind": "rule_storm", "severity": "warning",
                        "message": "storm", "value": 100.0,
                        "threshold": 50.0, "timestamp": 0.5}],
            "stats": {"storage": {"wal_append_failures": 3},
                      "rules": {}},
            "profile": {"rules": {"r": {"firings": 10}}},
        }
        findings = doctor.diagnose(bundle)
        assert findings[0].kind == "wal_failure"
        assert findings[0].severity == "critical"

    def test_healthy_bundle_reports_no_signatures(self):
        findings = doctor.diagnose({
            "kind": "manual", "wall": 1.0,
            "health": {"status": "ok"}, "alerts": [],
            "stats": {"rules": {}, "storage": {}}, "profile": {"rules": {}}})
        assert len(findings) == 1
        assert findings[0].kind == "healthy"

    def test_load_bundle_arg_resolves_directories(self, tmp_path):
        db = _db(tmp_path)
        try:
            db.forensics.capture(reason="first")
            newest = db.forensics.capture(reason="second")
        finally:
            db.close()
        for target in (tmp_path, tmp_path / "forensics"):
            bundle = doctor.load_bundle_arg(str(target))
            assert bundle["reason"] == "second"
        explicit = doctor.load_bundle_arg(
            str(tmp_path / "forensics" / (newest + ".json")))
        assert explicit["reason"] == "second"


class TestAdminEndpoints:
    def test_forensics_409_when_off(self, tmp_path):
        db = HiPAC(lock_timeout=2.0)
        try:
            server = db.serve_admin()
            status, _, body = _get(server.url + "/forensics")
            assert status == 409
            assert b"forensics" in body
        finally:
            db.close()

    def test_alerts_endpoint_filters_and_bounds(self, tmp_path):
        db = _db(tmp_path)
        try:
            db.watchdog.note_cascade_limit(5, "loop via r1")
            db.watchdog.note_slo("commit_latency", "burning", 2.0)
            server = db.serve_admin()
            status, _, body = _get(server.url + "/alerts")
            assert status == 200
            payload = json.loads(body)
            assert payload["total"] == 2
            assert payload["by_kind"]["cascade_depth"] == 1
            assert payload["by_kind"]["slo_burn"] == 1
            assert len(payload["alerts"]) == 2
            status, _, body = _get(server.url
                                   + "/alerts?kind=cascade_depth")
            payload = json.loads(body)
            assert [a["kind"] for a in payload["alerts"]] \
                == ["cascade_depth"]
            status, _, body = _get(server.url + "/alerts?last=1")
            payload = json.loads(body)
            assert len(payload["alerts"]) == 1
            assert payload["alerts"][0]["kind"] == "slo_burn"
            status, _, _ = _get(server.url + "/alerts?last=nope")
            assert status == 400
        finally:
            db.close()

    def test_forensics_capture_list_and_download(self, tmp_path):
        db = _db(tmp_path)
        try:
            server = db.serve_admin()
            status, _, body = _get(server.url + "/forensics?capture=1")
            assert status == 200
            captured = json.loads(body)["captured"]
            status, _, body = _get(server.url + "/forensics")
            assert status == 200
            payload = json.loads(body)
            assert payload["stats"]["captures"] == 1
            assert payload["bundles"][0]["id"] == captured
            assert payload["stats"]["last_kind"] == "manual"
            status, headers, body = _get(
                server.url + "/forensics?id=%s&download=1" % captured)
            assert status == 200
            assert "attachment" in headers.get("Content-Disposition", "")
            bundle = json.loads(body)
            assert bundle["kind"] == "manual"
            status, _, _ = _get(server.url + "/forensics?id=nope")
            assert status == 404
            status, _, _ = _get(server.url
                                + "/forensics?id=..%2F..%2Fetc%2Fpasswd")
            assert status == 404
            # the index advertises the new endpoints
            _, _, body = _get(server.url + "/")
            assert b"/forensics" in body and b"/alerts" in body
        finally:
            db.close()

    def test_watchdog_alert_counter_reaches_prometheus(self, tmp_path):
        db = _db(tmp_path)
        try:
            db.watchdog.note_cascade_limit(7, "loop")
            text = db.prometheus_metrics()
            assert 'watchdog_alerts_total{kind="cascade_depth"} 1' in text
        finally:
            db.close()


class TestTopIncidentLine:
    def test_alert_and_capture_ages(self):
        current = {
            "time": 1000.0,
            "forensics": {"bundles": 2, "bytes": 4096,
                          "last_kind": "rule_storm", "last_wall": 940.0},
        }
        health = {"recent": [{"kind": "rule_storm", "severity": "warning",
                              "timestamp": 880.0}]}
        line = top_tool.incident_line(current, health)
        assert "last alert [warning] rule_storm 2m00s ago" in line
        assert "last capture rule_storm 1m00s ago" in line
        assert "2 bundle(s)" in line

    def test_armed_but_idle(self):
        line = top_tool.incident_line(
            {"time": 10.0, "forensics": {"bundles": 0, "bytes": 0,
                                         "last_kind": None}}, {})
        assert line == "forensics armed, no captures"

    def test_absent_when_nothing_to_say(self):
        assert top_tool.incident_line({"time": 10.0}, {}) == ""

    def test_render_includes_incident_line(self):
        frame = top_tool.render(
            {"time": 100.0, "uptime": 5.0,
             "forensics": {"bundles": 1, "bytes": 10,
                           "last_kind": "manual", "last_wall": 90.0}},
            [], health={"status": "ok"})
        assert "last capture manual 10s ago" in frame
