"""Concurrency tests: serializability of concurrent application
transactions and separate-coupling rule firings under strict 2PL."""

import threading

import pytest

from repro import (
    Action,
    Attr,
    AttrType,
    AttributeDef,
    ClassDef,
    Condition,
    HiPAC,
    Query,
    Rule,
    TransactionAborted,
    on_update,
)


@pytest.fixture
def db():
    database = HiPAC(lock_timeout=10.0)
    database.define_class(ClassDef("Counter", (
        AttributeDef("name", AttrType.STRING, required=True),
        AttributeDef("value", AttrType.INT, default=0),
    )))
    return database


class TestSerializableCounters:
    def test_concurrent_increments_serialize(self, db):
        with db.transaction() as txn:
            oid = db.create("Counter", {"name": "c", "value": 0}, txn)

        def bump(times):
            for _ in range(times):
                while True:
                    txn = db.begin()
                    try:
                        value = db.read(oid, txn)["value"]
                        db.update(oid, {"value": value + 1}, txn)
                        db.commit(txn)
                        break
                    except TransactionAborted:
                        if not txn.is_finished():
                            db.abort(txn)

        threads = [threading.Thread(target=bump, args=(25,), daemon=True)
                   for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        with db.transaction() as txn:
            assert db.read(oid, txn)["value"] == 100

    def test_concurrent_writers_distinct_objects_no_interference(self, db):
        oids = []
        with db.transaction() as txn:
            for i in range(4):
                oids.append(db.create("Counter", {"name": "c%d" % i}, txn))

        def work(i):
            for n in range(20):
                with db.transaction() as txn:
                    db.update(oids[i], {"value": n + 1}, txn)

        threads = [threading.Thread(target=work, args=(i,), daemon=True)
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        with db.transaction() as txn:
            for oid in oids:
                assert db.read(oid, txn)["value"] == 20


class TestSeparateFiringConcurrency:
    def test_separate_firing_serializes_with_trigger(self, db):
        """A separate-coupling rule reading the class extent blocks until
        the triggering transaction releases its write locks; it must then
        observe the committed value (no dirty read)."""
        observed = []
        db.create_rule(Rule(
            name="watch",
            event=on_update("Counter", attrs=["value"]),
            condition=Condition.of(Query("Counter", Attr("value") >= 0)),
            action=Action.call(
                lambda ctx: observed.append(ctx.results[0].values("value"))),
            ec_coupling="separate",
        ))
        with db.transaction() as txn:
            oid = db.create("Counter", {"name": "c", "value": 0}, txn)
        txn = db.begin()
        db.update(oid, {"value": 1}, txn)
        db.update(oid, {"value": 2}, txn)
        db.commit(txn)
        assert db.drain(timeout=30.0)
        # Two firings; each read state after the trigger finished.
        assert observed == [[2], [2]]
        assert db.rule_manager.background_errors == []

    def test_separate_firing_after_abort_sees_old_state(self, db):
        observed = []
        db.create_rule(Rule(
            name="watch",
            event=on_update("Counter", attrs=["value"]),
            condition=Condition.of(Query("Counter", Attr("value") >= 0)),
            action=Action.call(
                lambda ctx: observed.append(ctx.results[0].values("value"))),
            ec_coupling="separate",
        ))
        with db.transaction() as txn:
            oid = db.create("Counter", {"name": "c", "value": 7}, txn)
        txn = db.begin()
        db.update(oid, {"value": 99}, txn)
        db.abort(txn)
        assert db.drain(timeout=30.0)
        # The firing was launched (causally independent) but the query ran
        # against post-abort state: value is back to 7.
        assert observed == [[7]]

    def test_many_concurrent_separate_firings_complete(self, db):
        total = []
        lock = threading.Lock()
        db.create_rule(Rule(
            name="tally",
            event=on_update("Counter", attrs=["value"]),
            condition=Condition.true(),
            action=Action.call(
                lambda ctx: (lock.acquire(), total.append(1), lock.release())),
            ec_coupling="separate",
            ca_coupling="immediate",
        ))
        with db.transaction() as txn:
            oid = db.create("Counter", {"name": "c"}, txn)
        for i in range(30):
            with db.transaction() as txn:
                db.update(oid, {"value": i + 1}, txn)
        assert db.drain(timeout=60.0)
        assert len(total) == 30
        assert db.rule_manager.background_errors == []
