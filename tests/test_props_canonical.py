"""Property-based tests: structural canonicalization of predicates and
queries — the foundation of condition-graph sharing."""

from hypothesis import given, settings, strategies as st

from repro.objstore.predicates import And, Attr, Compare, Const, Not, Or
from repro.objstore.query import Query

ATTRS = ["a", "b", "c"]
OPS = ["==", "!=", "<", "<=", ">", ">="]


@st.composite
def predicates(draw, depth=0):
    """Random predicate trees up to depth 3."""
    if depth >= 3 or draw(st.booleans()):
        attr = draw(st.sampled_from(ATTRS))
        op = draw(st.sampled_from(OPS))
        value = draw(st.integers(-5, 5))
        return Compare(Attr(attr), op, Const(value))
    kind = draw(st.sampled_from(["and", "or", "not"]))
    if kind == "not":
        return Not(draw(predicates(depth=depth + 1)))
    left = draw(predicates(depth=depth + 1))
    right = draw(predicates(depth=depth + 1))
    if kind == "and":
        return And(left, right)
    return Or(left, right)


objects = st.dictionaries(st.sampled_from(ATTRS), st.integers(-6, 6),
                          min_size=0, max_size=3)


class TestCanonicalKeys:
    @settings(max_examples=150, deadline=None)
    @given(pred=predicates())
    def test_key_is_hashable_and_stable(self, pred):
        assert hash(pred.canonical_key()) == hash(pred.canonical_key())
        assert pred == pred

    @settings(max_examples=150, deadline=None)
    @given(left=predicates(), right=predicates())
    def test_commutative_connectives_share_keys(self, left, right):
        assert And(left, right) == And(right, left)
        assert Or(left, right) == Or(right, left)

    @settings(max_examples=150, deadline=None)
    @given(left=predicates(), right=predicates(), obj=objects)
    def test_equal_keys_imply_equal_semantics(self, left, right, obj):
        """Structural sharing is only sound if key equality implies
        pointwise equivalence."""
        if left.canonical_key() == right.canonical_key():
            assert left.matches(obj, {}) == right.matches(obj, {})

    @settings(max_examples=150, deadline=None)
    @given(pred=predicates(), obj=objects)
    def test_demorgan_consistency(self, pred, obj):
        assert Not(pred).matches(obj, {}) != pred.matches(obj, {})

    @settings(max_examples=100, deadline=None)
    @given(pred=predicates())
    def test_query_key_round_trip(self, pred):
        q1 = Query("C", pred)
        q2 = Query("C", pred)
        assert q1.canonical_key() == q2.canonical_key()
        assert Query("D", pred).canonical_key() != q1.canonical_key()
