"""Smoke tests: every example script must run to completion.

These guard the documentation — examples are the first thing a new user
runs, so they are executed as subprocesses exactly as a user would."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def run_example(name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True, text=True, timeout=120)


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_cleanly(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr


def test_quickstart_output_mentions_coupling_modes():
    result = run_example("quickstart.py")
    for mode in ("immediate", "deferred", "separate"):
        assert mode in result.stdout


def test_saa_example_reports_paper_observations():
    result = run_example("securities_assistant.py")
    assert "direct program-to-program interactions : 0" in result.stdout
    assert "bought 500 XRX" in result.stdout


def test_analysis_example_finds_the_cycle():
    result = run_example("rulebase_analysis.py")
    assert "POTENTIAL INFINITE CASCADES" in result.stdout


def test_module_demo_runs():
    result = subprocess.run([sys.executable, "-m", "repro"],
                            capture_output=True, text=True, timeout=60)
    assert result.returncode == 0, result.stderr
    assert "Figure 5.1" in result.stdout
