"""Tests for causal provenance: the bounded provenance store, the
``HiPAC.why()`` chain walker, its join to the flight recorder's journal
sequence numbers (replay bisection), the ``/why`` admin endpoint, and the
``explain_state`` rendering.

The headline scenario is the acceptance criterion: on a 3-deep rule
cascade, ``why()`` returns the full chain ending at the external
stimulus, and each hop carries a flight-journal seq that — fed to
``replay --until`` — reproduces the state up to (or, with ``seq - 1``,
just before) that exact cause.
"""

from __future__ import annotations

import json
import threading
import urllib.parse

import pytest

from repro import (
    Action,
    ClassDef,
    Condition,
    HiPAC,
    Rule,
    attributes,
    on_create,
    on_update,
)
from repro.events.spec import ExternalEventSpec
from repro.obs.provenance import ProvenanceStore, parse_oid
from repro.objstore.objects import OID
from repro.tools.explain import _wall_stamp, explain_state
from repro.tools.replay import replay


def _db(**kwargs) -> HiPAC:
    kwargs.setdefault("lock_timeout", 2.0)
    db = HiPAC(**kwargs)
    for name in ("A", "B", "C", "D"):
        db.define_class(ClassDef(name, attributes(("v", "int"))))
    return db


def _chain_rules():
    """on_update(A) -> update B.v -> on_update(B) -> update C.v.

    OIDs are fixed (first instance of each class), so the same library
    works in the live system and in replay."""
    b, c = OID("B", 2), OID("C", 3)
    return [
        Rule("a2b", event=on_update("A"), condition=Condition.true(),
             action=Action.call(
                 lambda ctx: ctx.update(b, {"v": ctx.bindings["new_v"]}))),
        Rule("b2c", event=on_update("B"), condition=Condition.true(),
             action=Action.call(
                 lambda ctx: ctx.update(c, {"v": ctx.bindings["new_v"]}))),
    ]


def _seed_abc(db):
    with db.transaction() as txn:
        a = db.create("A", {"v": 0}, txn)
        b = db.create("B", {"v": 0}, txn)
        c = db.create("C", {"v": 0}, txn)
    return a, b, c


# ================================================================ chain walk


class TestWhyChain:
    def test_application_write_has_application_cause(self):
        db = _db()
        a, _, _ = _seed_abc(db)
        with db.transaction() as txn:
            db.update(a, {"v": 5}, txn)
        chain = db.why(a, "v")
        assert chain.complete and not chain.truncated
        assert [h.op for h in chain.hops] == ["update"]
        hop = chain.hops[0]
        assert (hop.old_value, hop.new_value) == (0, 5)
        assert hop.cause.kind == "application"
        assert "application write" in chain.stimulus
        db.close()

    def test_cascade_chain_reaches_the_stimulus(self):
        db = _db()
        a, b, c = _seed_abc(db)
        for rule in _chain_rules():
            db.create_rule(rule)
        with db.transaction() as txn:
            db.update(a, {"v": 7}, txn)
        chain = db.why(c, "v")
        assert chain.complete
        assert [h.oid for h in chain.hops] == [c, b, a]
        assert [h.cause.kind for h in chain.hops] == \
            ["rule", "rule", "application"]
        assert chain.hops[0].cause.rule == "b2c"
        assert chain.hops[1].cause.rule == "a2b"
        assert chain.hops[0].cause.trigger_oid == b
        # Firing ids are real and distinct
        ids = [h.cause.firing_id for h in chain.hops[:2]]
        assert all(isinstance(i, int) for i in ids) and ids[0] != ids[1]
        db.close()

    def test_why_accepts_string_oid_and_any_attr(self):
        db = _db()
        a, _, _ = _seed_abc(db)
        chain = db.why("A#%d" % a.number)
        assert chain.hops and chain.hops[0].op == "create"
        db.close()

    def test_depth_limit_truncates(self):
        db = _db()
        a, _, c = _seed_abc(db)
        for rule in _chain_rules():
            db.create_rule(rule)
        with db.transaction() as txn:
            db.update(a, {"v": 9}, txn)
        chain = db.why(c, "v", depth=2)
        assert len(chain.hops) == 2
        assert chain.truncated and not chain.complete
        db.close()

    def test_external_event_is_the_boundary(self):
        db = _db()
        _seed_abc(db)
        created = {}
        db.define_event("alarm", "level")
        db.create_rule(Rule(
            "on_alarm", event=ExternalEventSpec("alarm", ("level",)),
            condition=Condition.true(),
            action=Action.call(lambda ctx: created.setdefault(
                "oid", ctx.create("D", {"v": ctx.bindings["level"]})))))
        with db.transaction() as txn:
            db.signal_event("alarm", {"level": 3}, txn)
        chain = db.why(created["oid"], "v")
        assert chain.complete and len(chain.hops) == 1
        cause = chain.hops[0].cause
        assert cause.kind == "rule" and cause.event_kind == "external"
        assert cause.trigger_oid is None
        assert "external event" in chain.stimulus
        db.close()

    def test_why_raises_when_provenance_off(self):
        db = _db(provenance=False)
        assert db.provenance is None
        with pytest.raises(ValueError, match="provenance is off"):
            db.why(OID("A", 1), "v")
        db.close()

    def test_observability_off_disables_provenance_by_default(self):
        db = _db(observability=False)
        assert db.provenance is None
        db.close()
        forced = _db(observability=False, provenance=True)
        assert forced.provenance is not None
        forced.close()


# ======================================================== replay bisection


class TestReplayJoin:
    def test_three_deep_chain_carries_replayable_seqs(self, tmp_path):
        """Acceptance: every hop's journal seq, fed to ``replay --until``,
        reproduces the state up to that cause; seq - 1 stops before it."""
        db = _db(durability="wal", data_dir=tmp_path, flight_recorder=True)
        a, b, c = _seed_abc(db)
        for rule in _chain_rules():
            db.create_rule(rule)
        with db.transaction() as txn:
            db.update(a, {"v": 7}, txn)
        chain = db.why(c, "v")
        assert chain.complete and len(chain.hops) == 3
        seqs = [h.journal_seq for h in chain.hops]
        assert all(isinstance(s, int) for s in seqs)
        # The whole cascade is one journalled sphere: every hop addresses
        # the stimulus record of the committing top-level transaction.
        assert len(set(seqs)) == 1
        db.close()

        until = seqs[-1]
        after = replay(tmp_path, lambda rdb: _chain_rules(), until=until)
        txn = after.db.begin()
        assert after.db.read(c, txn)["v"] == 7
        after.db.commit(txn)
        after.db.close()

        before = replay(tmp_path, lambda rdb: _chain_rules(),
                        until=until - 1)
        txn = before.db.begin()
        assert before.db.read(c, txn)["v"] == 0
        before.db.commit(txn)
        before.db.close()

    def test_external_stimulus_seq_addresses_the_signal_record(
            self, tmp_path):
        db = _db(durability="wal", data_dir=tmp_path, flight_recorder=True)
        _seed_abc(db)
        created = {}
        db.define_event("alarm", "level")

        def library():
            return [Rule(
                "on_alarm", event=ExternalEventSpec("alarm", ("level",)),
                condition=Condition.true(),
                action=Action.call(lambda ctx: created.setdefault(
                    "oid", ctx.create("D", {"v": ctx.bindings["level"]}))))]

        for rule in library():
            db.create_rule(rule)
        # Outside any transaction: the stimulus record alone is enough
        # for replay to re-derive the cascade (an in-transaction signal
        # would additionally need the sphere's commit record).
        db.signal_event("alarm", {"level": 3})
        d = created["oid"]
        chain = db.why(d, "v")
        seq = chain.hops[0].journal_seq
        assert isinstance(seq, int)
        db.close()
        # Up to the stimulus: the alarm fired, D exists.
        after = replay(tmp_path, lambda rdb: library(), until=seq)
        txn = after.db.begin()
        assert after.db.read(d, txn)["v"] == 3
        after.db.commit(txn)
        after.db.close()


# ============================================================ txn lifecycle


class TestLifecycle:
    def test_top_level_abort_prunes_everything(self):
        db = _db()
        a, _, _ = _seed_abc(db)
        txn = db.begin()
        db.update(a, {"v": 99}, txn)
        db.abort(txn)
        chain = db.why(a, "v")
        # Only the seeding create is visible; the aborted update is not.
        assert chain.hops[0].op == "create"
        assert db.provenance.stats_snapshot()["pruned"] == 1
        db.close()

    def test_nested_abort_prunes_only_the_subtree(self):
        db = _db()
        a, b, _ = _seed_abc(db)
        txn = db.begin()
        db.update(a, {"v": 1}, txn)
        sub = db.begin(parent=txn)
        db.update(b, {"v": 2}, sub)
        db.abort(sub)
        db.commit(txn)
        assert db.why(a, "v").hops[0].new_value == 1
        assert db.why(b, "v").hops[0].op == "create"
        db.close()

    def test_uncommitted_writes_are_not_queryable(self):
        db = _db()
        a, _, _ = _seed_abc(db)
        txn = db.begin()
        db.update(a, {"v": 42}, txn)
        assert db.why(a, "v").hops[0].op == "create"
        db.commit(txn)
        assert db.why(a, "v").hops[0].new_value == 42
        db.close()

    def test_delete_records_an_object_level_entry(self):
        db = _db()
        a, _, _ = _seed_abc(db)
        with db.transaction() as txn:
            db.delete(a, txn)
        chain = db.why(a)
        assert chain.hops[0].op == "delete"
        assert chain.hops[0].attr is None
        db.close()


# ================================================================= bounding


class TestBounds:
    def test_per_key_ring_keeps_last_k(self):
        db = _db(provenance_per_key=3)
        a, _, _ = _seed_abc(db)
        for i in range(10):
            with db.transaction() as txn:
                db.update(a, {"v": i + 1}, txn)
        store = db.provenance
        ring = store._rings[(a, "v")]
        assert [e.new_value for e in ring] == [8, 9, 10]
        assert store.stats_snapshot()["evicted"] > 0
        db.close()

    def test_memory_bounded_under_100k_write_soak(self):
        """Acceptance: 100k writes stay under the global cap, evictions
        are observed, and the order deque does not accumulate garbage."""
        db = _db(provenance_per_key=4, provenance_capacity=500)
        oids = []
        with db.transaction() as txn:
            for i in range(100):
                oids.append(db.create("A", {"v": 0}, txn))
        writes = 0
        for round_no in range(10):
            for oid in oids:
                with db.transaction() as txn:
                    for _ in range(100):
                        writes += 1
                        db.update(oid, {"v": writes}, txn)
        assert writes == 100_000
        snap = db.provenance.stats_snapshot()
        assert snap["live_entries"] <= 500
        assert snap["evicted"] > 0
        assert snap["published"] >= 100_000
        assert snap["evicted"] + snap["live_entries"] == snap["published"]
        # internal bookkeeping stays proportional to live entries
        assert len(db.provenance._order) <= 2 * snap["live_entries"] + 1
        assert snap["approx_bytes"] > 0
        db.close()

    def test_capacity_eviction_across_keys(self):
        store = ProvenanceStore(per_key=8, capacity=4)

        class _Txn:
            txn_id = "t1"

            def top_level(self):
                return self

        class _Delta:
            kind = "update"

            def __init__(self, oid, n):
                self.oid = oid
                self.old_attrs = {"v": n - 1}
                self.new_attrs = {"v": n}

        txn = _Txn()
        txn.prov_tail = None
        txn.flight_seq = None
        for i in range(10):
            store.note_delta(_Delta(OID("X", i), i + 1), txn, "u")
        store.publish(txn)
        snap = store.stats_snapshot()
        assert snap["live_entries"] == 4
        assert snap["evicted"] == 6
        # the survivors are the newest four
        assert store.latest(OID("X", 9), "v") is not None
        assert store.latest(OID("X", 0), "v") is None


# ============================================================ admin endpoint


class TestWhyEndpoint:
    def test_why_endpoint_returns_chain_json(self):
        db = _db()
        a, _, c = _seed_abc(db)
        for rule in _chain_rules():
            db.create_rule(rule)
        with db.transaction() as txn:
            db.update(a, {"v": 7}, txn)
        server = db.serve_admin()
        from tests.test_admin_server import _get
        url = server.url + "/why?oid=" + urllib.parse.quote("C#3") + "&attr=v"
        status, headers, body = _get(url)
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        chain = json.loads(body)
        assert chain["complete"] is True
        assert [h["oid"] for h in chain["hops"]] == ["C#3", "B#2", "A#1"]
        # the Class:N alias spares shells the %23 encoding
        status, _, body = _get(server.url + "/why?oid=C:3&attr=v")
        assert status == 200 and json.loads(body)["complete"] is True
        db.close()

    def test_why_endpoint_parameter_errors(self):
        db = _db()
        server = db.serve_admin()
        from tests.test_admin_server import _get
        status, _, body = _get(server.url + "/why")
        assert status == 400 and b"oid" in body
        status, _, body = _get(server.url + "/why?oid=nonsense")
        assert status == 400 and b"malformed oid" in body
        status, _, body = _get(server.url + "/why?oid=A:1&depth=x")
        assert status == 400
        db.close()

    def test_why_endpoint_409_when_off(self):
        db = _db(provenance=False)
        server = db.serve_admin()
        from tests.test_admin_server import _get
        status, _, body = _get(server.url + "/why?oid=A:1")
        assert status == 409 and b"provenance is off" in body
        db.close()


# ================================================================== metrics


class TestMetricsFamily:
    def test_stats_section_and_prometheus_gauges(self):
        db = _db()
        a, _, _ = _seed_abc(db)
        with db.transaction() as txn:
            db.update(a, {"v": 1}, txn)
        db.why(a, "v")
        section = db.stats()["provenance"]
        assert section["published"] >= 4
        assert section["live_entries"] == section["published"]
        assert section["why_queries"] == 1
        assert section["approx_bytes"] > 0
        text = db.prometheus_metrics()
        assert "# TYPE hipac_provenance_entries gauge" in text
        assert "# TYPE hipac_provenance_bytes gauge" in text
        assert "# TYPE hipac_provenance_evictions_total counter" in text
        assert "hipac_provenance_why_seconds_count 1" in text
        db.close()

    def test_stats_section_zeroed_when_off(self):
        db = _db(provenance=False)
        section = db.stats()["provenance"]
        assert section["published"] == 0 and section["live_entries"] == 0
        db.close()


# ================================================================ rendering


class TestRendering:
    def test_wall_stamp_is_utc_with_date(self):
        assert _wall_stamp(0.0) == "1970-01-01T00:00:00.000Z"
        assert _wall_stamp(1000000000.5) == "2001-09-09T01:46:40.500Z"

    def test_explain_state_renders_the_chain(self):
        db = _db()
        a, _, c = _seed_abc(db)
        for rule in _chain_rules():
            db.create_rule(rule)
        with db.transaction() as txn:
            db.update(a, {"v": 7}, txn)
        text = explain_state(db, c, "v")
        assert text.startswith("why C#3.v:")
        assert "by rule 'b2c'" in text
        assert "by application" in text
        assert "stimulus:" in text
        db.close()

    def test_explain_state_on_unknown_object(self):
        db = _db()
        text = explain_state(db, OID("A", 999), "v")
        assert "no provenance recorded" in text
        db.close()

    def test_explain_state_names_the_replay_command(self, tmp_path):
        db = _db(durability="wal", data_dir=tmp_path, flight_recorder=True)
        a, _, _ = _seed_abc(db)
        with db.transaction() as txn:
            db.update(a, {"v": 1}, txn)
        text = explain_state(db, a, "v")
        assert "repro.tools.replay --until" in text
        db.close()


# ==================================================================== misc


class TestParseOid:
    def test_both_spellings(self):
        assert parse_oid("Stock#7") == OID("Stock", 7)
        assert parse_oid("Stock:7") == OID("Stock", 7)

    def test_rejects_garbage(self):
        for bad in ("", "Stock", "#7", "Stock#", "Stock#x"):
            with pytest.raises(ValueError):
                parse_oid(bad)
