"""End-to-end integration tests crossing all subsystems."""

import pytest

from repro import (
    Action,
    Attr,
    AttrType,
    AttributeDef,
    ClassDef,
    Condition,
    Disjunction,
    HiPAC,
    Query,
    Rule,
    Sequence,
    VirtualClock,
    after,
    attributes,
    every,
    external,
    on_create,
    on_delete,
    on_update,
)


@pytest.fixture
def db():
    database = HiPAC(lock_timeout=2.0)
    database.define_class(ClassDef("Order", (
        AttributeDef("item", AttrType.STRING, required=True),
        AttributeDef("qty", AttrType.INT, default=1),
        AttributeDef("status", AttrType.STRING, default="new"),
    )))
    return database


class TestCompositeEventRules:
    def test_disjunction_rule_fires_on_either(self, db):
        fired = []
        db.create_rule(Rule(
            name="any-change",
            event=Disjunction(on_create("Order"), on_delete("Order")),
            condition=Condition.true(),
            action=Action.call(lambda ctx: fired.append(
                ctx.signal.constituents[0].op)),
        ))
        with db.transaction() as txn:
            oid = db.create("Order", {"item": "x"}, txn)
            db.delete(oid, txn)
        assert fired == ["create", "delete"]

    def test_sequence_rule_with_bindings(self, db):
        db.define_event("approved", "who")
        fired = []
        db.create_rule(Rule(
            name="create-then-approve",
            event=Sequence(on_create("Order"), external("approved", "who")),
            condition=Condition.true(),
            action=Action.call(lambda ctx: fired.append(
                (ctx.bindings.get("who"), ctx.bindings.get("oid")))),
        ))
        with db.transaction() as txn:
            oid = db.create("Order", {"item": "x"}, txn)
            db.signal_event("approved", {"who": "alice"}, txn)
        assert fired == [("alice", oid)]

    def test_sequence_rule_wrong_order_does_not_fire(self, db):
        db.define_event("approved", "who")
        fired = []
        db.create_rule(Rule(
            name="create-then-approve",
            event=Sequence(on_create("Order"), external("approved", "who")),
            condition=Condition.true(),
            action=Action.call(lambda ctx: fired.append(1)),
        ))
        with db.transaction() as txn:
            db.signal_event("approved", {"who": "alice"}, txn)
        assert fired == []

    def test_composite_rule_coupling_uses_completing_txn(self, db):
        db.define_event("go")
        seen = []
        db.create_rule(Rule(
            name="seq",
            event=Sequence(on_create("Order"), external("go")),
            condition=Condition.true(),
            action=Action.call(
                lambda ctx: seen.append(ctx.txn.top_level().txn_id)),
            ec_coupling="immediate",
        ))
        with db.transaction() as t1:
            db.create("Order", {"item": "x"}, t1)
        with db.transaction() as t2:
            db.signal_event("go", {}, t2)
            completing = t2.txn_id
        assert seen == [completing]


class TestTemporalRules:
    def test_relative_event_rule_end_to_end(self):
        clock = VirtualClock()
        db = HiPAC(clock=clock, lock_timeout=2.0)
        db.define_class(ClassDef("Order", attributes("item")))
        escalations = []
        db.create_rule(Rule(
            name="escalate-stale-order",
            event=after(on_create("Order"), 60.0),
            condition=Condition.true(),
            action=Action.call(lambda ctx: escalations.append(
                ctx.signal.timestamp)),
        ))
        clock.advance(10.0)
        with db.transaction() as txn:
            db.create("Order", {"item": "x"}, txn)
        clock.advance(59.0)
        assert escalations == []
        clock.advance(1.0)
        assert escalations == [70.0]

    def test_periodic_rule_querying_database(self):
        clock = VirtualClock()
        db = HiPAC(clock=clock, lock_timeout=2.0)
        db.define_class(ClassDef("Order", attributes(
            "item", ("status", "string"))))
        reports = []
        db.create_rule(Rule(
            name="hourly-new-order-report",
            event=every(3600.0),
            condition=Condition.of(
                Query("Order", Attr("status") == "new")),
            action=Action.call(lambda ctx: reports.append(
                len(ctx.results[0]))),
        ))
        clock.advance(3600.0)
        assert reports == []  # no new orders: condition unsatisfied
        with db.transaction() as txn:
            db.create("Order", {"item": "a", "status": "new"}, txn)
            db.create("Order", {"item": "b", "status": "new"}, txn)
        clock.advance(3600.0)
        assert reports == [2]


class TestWorkflowScenario:
    """A small order-processing workflow where the control logic lives
    entirely in rules (the §4 paradigm)."""

    def build(self, db):
        db.define_class(ClassDef("Shipment", (
            AttributeDef("order", AttrType.OID),
            AttributeDef("state", AttrType.STRING, default="pending"),
        )))
        log = []
        # Order created -> create a shipment (immediate).
        db.create_rule(Rule(
            name="order-to-shipment",
            event=on_create("Order"),
            condition=Condition.true(),
            action=Action.call(lambda ctx: ctx.create(
                "Shipment", {"order": ctx.bindings["oid"]})),
        ))
        # Shipment shipped -> mark the order done (immediate).
        def complete(ctx):
            order = ctx.bindings["new_order"]
            ctx.update(order, {"status": "done"})
            log.append("completed")
        db.create_rule(Rule(
            name="shipment-complete",
            event=on_update("Shipment", attrs=["state"]),
            condition=Condition(guard=lambda b, r: b["new_state"] == "shipped"),
            action=Action.call(complete),
        ))
        return log

    def test_workflow_happy_path(self, db):
        log = self.build(db)
        with db.transaction() as txn:
            order = db.create("Order", {"item": "widget"}, txn)
        with db.transaction() as txn:
            shipment = db.query(Query("Shipment"), txn).first().oid
            db.update(shipment, {"state": "shipped"}, txn)
        with db.transaction() as txn:
            assert db.read(order, txn)["status"] == "done"
        assert log == ["completed"]

    def test_workflow_abort_unwinds_everything(self, db):
        self.build(db)
        txn = db.begin()
        db.create("Order", {"item": "widget"}, txn)
        db.abort(txn)
        with db.transaction() as r:
            assert len(db.query(Query("Order"), r)) == 0
            assert len(db.query(Query("Shipment"), r)) == 0


class TestConstraintPlusRuleInterplay:
    def test_rule_action_subject_to_constraints(self, db):
        """A rule action violating a deferred constraint aborts the whole
        triggering transaction."""
        from repro.declarative import DomainConstraint, install_domain_constraint
        install_domain_constraint(db, DomainConstraint(
            "qty-cap", "Order", Attr("qty") <= 10))
        db.create_rule(Rule(
            name="double-qty",
            event=on_update("Order", attrs=["status"]),
            condition=Condition.true(),
            action=Action.call(lambda ctx: ctx.update(
                ctx.bindings["oid"], {"qty": ctx.bindings["new_qty"] * 2})),
        ))
        with db.transaction() as txn:
            oid = db.create("Order", {"item": "x", "qty": 8}, txn)
        from repro import IntegrityViolation
        txn = db.begin()
        db.update(oid, {"status": "rush"}, txn)  # rule doubles qty to 16
        with pytest.raises(IntegrityViolation):
            db.commit(txn)
        with db.transaction() as r:
            assert db.read(oid, r)["qty"] == 8

    def test_constraint_rules_coexist_with_alerters(self, db):
        from repro.conditions.condition import Condition as Cond
        from repro.declarative import (
            Alerter,
            DomainConstraint,
            install_alerter,
            install_domain_constraint,
        )
        install_domain_constraint(db, DomainConstraint(
            "qty-positive", "Order", Attr("qty") >= 0))
        alerts = []
        install_alerter(db, Alerter(
            "big-order",
            event=on_create("Order"),
            condition=Cond(guard=lambda b, r: b.get("new_qty", 0) >= 100),
            notify=lambda ctx: alerts.append(ctx.bindings["new_item"]),
            coupling="immediate"))
        with db.transaction() as txn:
            db.create("Order", {"item": "bulk", "qty": 500}, txn)
        assert alerts == ["bulk"]


class TestEverythingTogether:
    def test_full_stack_session(self):
        """Schema + rules + constraints + temporal + external + app ops +
        analysis in one session."""
        clock = VirtualClock()
        db = HiPAC(clock=clock, lock_timeout=5.0)
        db.define_class(ClassDef("Sensor", (
            AttributeDef("name", AttrType.STRING, required=True, indexed=True),
            AttributeDef("reading", AttrType.NUMBER, default=0.0),
        )))
        app = db.application("console")
        shown = []
        app.operations.register("show", lambda msg: shown.append(msg))
        db.define_event("maintenance", "window")

        from repro.rules.actions import RequestStep
        db.create_rule(Rule(
            name="high-reading",
            event=on_update("Sensor", attrs=["reading"]),
            condition=Condition.of(Query("Sensor", Attr("reading") > 90.0)),
            action=Action.of(RequestStep(
                "console", "show",
                lambda ctx: {"msg": "high: %s" % sorted(
                    ctx.results[0].values("name"))})),
        ))
        db.create_rule(Rule(
            name="daily",
            event=every(86400.0),
            condition=Condition.true(),
            action=Action.of(RequestStep("console", "show",
                                         {"msg": "daily checkpoint"})),
        ))
        with db.transaction() as txn:
            s1 = db.create("Sensor", {"name": "s1", "reading": 10.0}, txn)
        with db.transaction() as txn:
            db.update(s1, {"reading": 95.0}, txn)
        clock.advance(86400.0)
        db.signal_event("maintenance", {"window": "tonight"})
        db.drain()

        assert shown == ["high: ['s1']", "daily checkpoint"]

        from repro.tools import analyze_rule_base, explain
        report = analyze_rule_base(db)
        assert not report.has_potential_infinite_cascade()
        text = explain(db.firing_log())
        assert "high-reading" in text and "daily" in text
