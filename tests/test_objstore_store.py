"""Tests for the physical object store: extents, deltas, inverses, indexes."""

import pytest

from repro.errors import SchemaError, UnknownObjectError
from repro.objstore.objects import OID
from repro.objstore.store import UPDATE, ObjectStore
from repro.objstore.types import AttrType, AttributeDef, ClassDef


def make_store():
    store = ObjectStore()
    store.define_class(ClassDef("Stock", (
        AttributeDef("symbol", AttrType.STRING, required=True, indexed=True),
        AttributeDef("price", AttrType.NUMBER, default=0.0),
    )))
    return store


class TestDDL:
    def test_define_creates_empty_extent(self):
        store = make_store()
        assert store.extent("Stock") == []

    def test_define_creates_declared_indexes(self):
        store = make_store()
        assert store.indexes.get("Stock", "symbol") is not None
        assert store.indexes.get("Stock", "price") is None

    def test_drop_nonempty_extent_rejected(self):
        store = make_store()
        store.insert("Stock", {"symbol": "A"})
        with pytest.raises(SchemaError):
            store.drop_class("Stock")

    def test_drop_removes_class_and_indexes(self):
        store = make_store()
        store.drop_class("Stock")
        assert not store.schema.has("Stock")
        assert store.indexes.get("Stock", "symbol") is None

    def test_define_delta_invertible(self):
        store = ObjectStore()
        delta = store.define_class(ClassDef("C"))
        store.apply(delta.inverse())
        assert not store.schema.has("C")
        store.apply(delta)
        assert store.schema.has("C")


class TestDML:
    def test_insert_fills_defaults(self):
        store = make_store()
        delta = store.insert("Stock", {"symbol": "A"})
        record = store.get(delta.oid)
        assert record.attrs == {"symbol": "A", "price": 0.0}

    def test_insert_missing_required_rejected(self):
        store = make_store()
        with pytest.raises(SchemaError):
            store.insert("Stock", {"price": 5.0})

    def test_insert_unknown_attr_rejected(self):
        store = make_store()
        with pytest.raises(SchemaError):
            store.insert("Stock", {"symbol": "A", "color": "red"})

    def test_insert_type_violation_rejected(self):
        store = make_store()
        with pytest.raises(SchemaError):
            store.insert("Stock", {"symbol": 42})

    def test_oids_unique_and_typed(self):
        store = make_store()
        d1 = store.insert("Stock", {"symbol": "A"})
        d2 = store.insert("Stock", {"symbol": "B"})
        assert d1.oid != d2.oid
        assert d1.oid.class_name == "Stock"

    def test_update_changes_and_delta(self):
        store = make_store()
        oid = store.insert("Stock", {"symbol": "A"}).oid
        delta = store.update(oid, {"price": 9.5})
        assert delta.kind == UPDATE
        assert delta.old_attrs["price"] == 0.0
        assert delta.new_attrs["price"] == 9.5
        assert store.get(oid).attrs["price"] == 9.5

    def test_update_unknown_attr_rejected(self):
        store = make_store()
        oid = store.insert("Stock", {"symbol": "A"}).oid
        with pytest.raises(SchemaError):
            store.update(oid, {"color": "red"})

    def test_delete_removes(self):
        store = make_store()
        oid = store.insert("Stock", {"symbol": "A"}).oid
        store.delete(oid)
        assert not store.exists(oid)
        with pytest.raises(UnknownObjectError):
            store.get(oid)

    def test_delete_unknown_raises(self):
        store = make_store()
        with pytest.raises(UnknownObjectError):
            store.delete(OID("Stock", 999))

    def test_get_unknown_class_raises(self):
        store = make_store()
        with pytest.raises(UnknownObjectError):
            store.get(OID("Nope", 1))


class TestDeltaInverse:
    def test_create_inverse_is_delete(self):
        store = make_store()
        delta = store.insert("Stock", {"symbol": "A"})
        store.apply(delta.inverse())
        assert not store.exists(delta.oid)

    def test_delete_inverse_restores_original_oid(self):
        store = make_store()
        oid = store.insert("Stock", {"symbol": "A", "price": 3.0}).oid
        delta = store.delete(oid)
        store.apply(delta.inverse())
        assert store.exists(oid)
        assert store.get(oid).attrs == {"symbol": "A", "price": 3.0}

    def test_update_inverse_restores_values(self):
        store = make_store()
        oid = store.insert("Stock", {"symbol": "A", "price": 3.0}).oid
        delta = store.update(oid, {"price": 7.0})
        store.apply(delta.inverse())
        assert store.get(oid).attrs["price"] == 3.0

    def test_double_inverse_roundtrip(self):
        store = make_store()
        oid = store.insert("Stock", {"symbol": "A"}).oid
        delta = store.update(oid, {"price": 1.0})
        inverse = delta.inverse()
        assert inverse.inverse().new_attrs == delta.new_attrs


class TestIndexMaintenance:
    def test_insert_indexed(self):
        store = make_store()
        oid = store.insert("Stock", {"symbol": "A"}).oid
        assert store.indexes.get("Stock", "symbol").lookup("A") == {oid}

    def test_update_moves_index_entry(self):
        store = make_store()
        oid = store.insert("Stock", {"symbol": "A"}).oid
        store.update(oid, {"symbol": "B"})
        index = store.indexes.get("Stock", "symbol")
        assert index.lookup("A") == set()
        assert index.lookup("B") == {oid}

    def test_delete_removes_index_entry(self):
        store = make_store()
        oid = store.insert("Stock", {"symbol": "A"}).oid
        store.delete(oid)
        assert store.indexes.get("Stock", "symbol").lookup("A") == set()

    def test_undo_maintains_index(self):
        store = make_store()
        oid = store.insert("Stock", {"symbol": "A"}).oid
        delta = store.update(oid, {"symbol": "B"})
        store.apply(delta.inverse())
        assert store.indexes.get("Stock", "symbol").lookup("A") == {oid}


class TestExtents:
    def make_hierarchy(self):
        store = ObjectStore()
        store.define_class(ClassDef("Base", (AttributeDef("a"),)))
        store.define_class(ClassDef("Sub", (AttributeDef("b"),), superclass="Base"))
        return store

    def test_extent_includes_subclasses(self):
        store = self.make_hierarchy()
        store.insert("Base", {"a": 1})
        store.insert("Sub", {"a": 2, "b": 3})
        assert len(store.extent("Base")) == 2
        assert len(store.extent("Base", include_subclasses=False)) == 1
        assert len(store.extent("Sub")) == 1

    def test_extent_size(self):
        store = self.make_hierarchy()
        store.insert("Sub", {"a": 1})
        assert store.extent_size("Base") == 1
        assert store.extent_size("Base", include_subclasses=False) == 0

    def test_snapshot_state_deep_copies(self):
        store = make_store()
        oid = store.insert("Stock", {"symbol": "A"}).oid
        snap = store.snapshot_state()
        store.update(oid, {"price": 99.0})
        assert snap["Stock"][oid]["price"] == 0.0
