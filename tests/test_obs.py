"""Tests for the observability subsystem (metrics, spans, exports, slow log).

The headline scenario mirrors the paper's execution model: a cascaded
firing — database event, immediate rule whose action causes a second
event, deferred rule fired at commit (§6.3) — must come out of
``observability="trace"`` as a *single* causal span tree whose shape
matches the nested-transaction tree of §3.2, and survive a round trip
through the Chrome ``trace_event`` exporter.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import (
    Action,
    ClassDef,
    Condition,
    HiPAC,
    Rule,
    attributes,
    on_create,
)
from repro.core.tracing import NullTracer, Tracer
from repro.obs.export import prometheus_text, render_span_tree
from repro.obs.metrics import HOT_PATH_SAMPLE, MetricsRegistry
from repro.obs.slowlog import SlowLog
from repro.obs.spans import SpanRecorder
from repro.rules.coupling import DEFERRED, IMMEDIATE, SEPARATE
from repro.rules.firing import FiringLog, RuleFiring


def _tracing_db() -> HiPAC:
    db = HiPAC(lock_timeout=2.0, observability="trace")
    for name in ("A", "B", "C"):
        db.define_class(ClassDef(name, attributes(("v", "int"))))
    return db


class TestSpanTrees:
    def test_cascaded_immediate_then_deferred_is_one_tree(self):
        """Event -> immediate R1 -> cascaded event -> deferred R2 at commit:
        one root span whose children mirror the nested-transaction tree."""
        db = _tracing_db()
        db.create_rule(Rule(
            name="R1", event=on_create("A"), condition=Condition.true(),
            action=Action.call(lambda ctx: ctx.create("B", {"v": 1})),
        ))
        db.create_rule(Rule(
            name="R2", event=on_create("B"), condition=Condition.true(),
            action=Action.call(lambda ctx: ctx.create("C", {"v": 2})),
            ec_coupling=DEFERRED, ca_coupling=DEFERRED,
        ))
        db.spans.clear()
        with db.transaction() as txn:
            db.create("A", {"v": 0}, txn)

        roots = db.spans.roots()
        event_roots = [r for r in roots if r.kind == "event"]
        assert len(event_roots) == 1, \
            "cascade must form one tree, got %r" % roots
        root = event_roots[0]
        assert "A" in root.tags["event"]

        # R1 fired immediately under the triggering event.
        (r1,) = [s for s in root.find(rule="R1", coupling=IMMEDIATE)
                 if s.kind == "firing"]
        assert r1.kind == "firing" and r1.tags["satisfied"] is True
        # Its action span hangs off the firing; the cascaded event on B
        # nests inside the action (the §6.2 suspension protocol).
        (r1_act,) = [s for s in r1.children if s.kind == "action"]
        cascaded = [s for s in r1_act.walk() if s.kind == "event"]
        assert len(cascaded) == 1 and "B" in cascaded[0].tags["event"]

        # R2 is deferred: it *ran* at commit time, but its firing span is
        # parented to the cascaded event that queued it (§6.3 causality),
        # keeping the whole cascade in one tree.
        (r2,) = [s for s in root.find(rule="R2", coupling=DEFERRED)
                 if s.kind == "firing"]
        assert r2.parent_id == cascaded[0].span_id
        assert r2.start >= cascaded[0].end  # fired after the event closed
        assert [s.kind for s in r2.children].count("condition") == 1
        assert any(s.kind == "action" for s in r2.children)

    def test_separate_firing_attaches_to_launching_event(self):
        """A separate-coupled firing runs on its own thread but its span
        hangs off the event span captured at launch time."""
        db = _tracing_db()
        db.create_rule(Rule(
            name="SEP", event=on_create("A"), condition=Condition.true(),
            action=Action.call(lambda ctx: ctx.create("B", {"v": 1})),
            ec_coupling=SEPARATE, ca_coupling=IMMEDIATE,
        ))
        db.spans.clear()
        with db.transaction() as txn:
            db.create("A", {"v": 0}, txn)
        assert db.drain(5.0)

        # The separate firing's own event (create B) roots a separate tree
        # on the worker thread; the firing span itself belongs to the
        # launching event's tree.
        launch_roots = [r for r in db.spans.roots()
                        if r.kind == "event" and "A" in r.tags["event"]]
        assert len(launch_roots) == 1
        (fire,) = [s for s in launch_roots[0].find(rule="SEP")
                   if s.kind == "firing"]
        assert fire.tags["separate_thread"] is True
        assert fire.tid != launch_roots[0].tid

    def test_deferred_batch_span_wraps_commit_time_work(self):
        db = _tracing_db()
        db.create_rule(Rule(
            name="DEF", event=on_create("A"), condition=Condition.true(),
            action=Action.call(lambda ctx: ctx.update(
                ctx.signal.oid, {"v": 99})),
            ec_coupling=DEFERRED, ca_coupling=IMMEDIATE,
        ))
        db.spans.clear()
        with db.transaction() as txn:
            db.create("A", {"v": 0}, txn)
        batches = [r for root in db.spans.roots() for r in root.walk()
                   if r.kind == "deferred_batch"]
        assert len(batches) == 1
        assert batches[0].tags["txn"] == txn.txn_id

    def test_default_observability_records_no_spans(self):
        db = HiPAC(lock_timeout=2.0)
        db.define_class(ClassDef("A", attributes(("v", "int"))))
        db.create_rule(Rule(
            name="R", event=on_create("A"), condition=Condition.true(),
            action=Action.call(lambda ctx: None),
        ))
        with db.transaction() as txn:
            db.create("A", {"v": 0}, txn)
        assert db.spans.roots() == []
        assert not db.spans.enabled
        # ...but metrics did record (production default).
        assert db.metrics.enabled
        assert db.metrics.histogram("om_operation_seconds").count >= 0

    def test_root_ring_bounded_and_drops_counted(self):
        recorder = SpanRecorder(capacity=3)
        for index in range(5):
            recorder.finish_span(recorder.start_span("s%d" % index))
        assert len(recorder.roots()) == 3
        assert recorder.dropped == 2
        assert [r.name for r in recorder.roots()] == ["s2", "s3", "s4"]


class TestChromeExport:
    def test_round_trip_through_json(self):
        db = _tracing_db()
        db.create_rule(Rule(
            name="R1", event=on_create("A"), condition=Condition.true(),
            action=Action.call(lambda ctx: ctx.create("B", {"v": 1})),
        ))
        db.spans.clear()
        with db.transaction() as txn:
            db.create("A", {"v": 0}, txn)

        document = json.loads(json.dumps(db.export_trace()))
        events = document["traceEvents"]
        assert events and document["displayTimeUnit"] == "ms"
        complete = [e for e in events if e["ph"] == "X"]
        for event in complete:
            assert isinstance(event["ts"], (int, float))
            assert event["dur"] >= 0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
        # Parentage survives in args; every non-root parent_id resolves.
        ids = {e["args"]["span_id"] for e in complete}
        for event in complete:
            parent = event["args"]["parent_id"]
            assert parent is None or parent in ids
        names = {e["name"] for e in complete}
        assert any(n.startswith("fire:R1") for n in names)
        assert any(n.startswith("act:R1") for n in names)

    def test_flow_arrows_pair_up_for_deferred_causality(self):
        db = _tracing_db()
        db.create_rule(Rule(
            name="D", event=on_create("A"), condition=Condition.true(),
            action=Action.call(lambda ctx: None),
            ec_coupling=DEFERRED,
        ))
        db.spans.clear()
        with db.transaction() as txn:
            db.create("A", {"v": 0}, txn)
        events = db.export_trace()["traceEvents"]
        starts = [e for e in events if e["ph"] == "s"]
        finishes = [e for e in events if e["ph"] == "f"]
        # The deferred firing detaches in time from its parent event: at
        # least one flow arrow, and every start has a matching finish.
        assert starts
        assert sorted(e["id"] for e in starts) == \
            sorted(e["id"] for e in finishes)

    def test_write_to_file(self, tmp_path):
        recorder = SpanRecorder()
        recorder.finish_span(recorder.start_span("root", kind="event"))
        path = tmp_path / "trace.json"
        from repro.obs.export import write_chrome_trace
        document = write_chrome_trace(recorder, path)
        assert json.loads(path.read_text())["traceEvents"] == \
            json.loads(json.dumps(document["traceEvents"]))


class TestRegistryThreadSafety:
    def test_counters_and_histograms_exact_across_threads(self):
        registry = MetricsRegistry(enabled=True)
        counter = registry.counter("ops")
        histogram = registry.histogram("lat")
        per_thread, threads = 5000, 8

        def worker():
            for index in range(per_thread):
                counter.inc()
                histogram.observe(index * 1e-6)

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert counter.value == per_thread * threads
        assert histogram.count == per_thread * threads
        snap = histogram.snapshot()
        assert snap["count"] == per_thread * threads
        assert snap["max"] == pytest.approx((per_thread - 1) * 1e-6)

    def test_same_name_same_labels_same_instrument(self):
        registry = MetricsRegistry(enabled=True)
        a = registry.histogram("x", mode="hit")
        b = registry.histogram("x", mode="hit")
        c = registry.histogram("x", mode="miss")
        assert a is b and a is not c

    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("ops")
        histogram = registry.histogram("lat")
        counter.inc()
        counter.inc(10)
        histogram.observe(1.0)
        assert counter.value == 0
        assert histogram.count == 0
        assert not histogram.should_sample()


class TestSampledHistograms:
    def test_stride_admits_one_in_n(self):
        registry = MetricsRegistry(enabled=True)
        histogram = registry.histogram("hot", sample=HOT_PATH_SAMPLE)
        admitted = sum(1 for _ in range(100) if histogram.should_sample())
        assert admitted == 100 // HOT_PATH_SAMPLE
        assert histogram.snapshot()["sample"] == HOT_PATH_SAMPLE

    def test_unsampled_histogram_always_admits(self):
        registry = MetricsRegistry(enabled=True)
        histogram = registry.histogram("exact")
        assert all(histogram.should_sample() for _ in range(10))
        assert histogram.snapshot()["sample"] == 1

    def test_percentiles_from_bucket_interpolation(self):
        registry = MetricsRegistry(enabled=True)
        histogram = registry.histogram("lat")
        for _ in range(100):
            histogram.observe(0.002)
        for _ in range(5):
            histogram.observe(0.5)
        assert histogram.percentile(50) <= 0.005
        assert histogram.percentile(99) >= 0.25


class TestFiringLogRing:
    def test_bounded_with_dropped_count(self):
        log = FiringLog(capacity=4)
        for index in range(7):
            log.append(RuleFiring("r%d" % index, "e", IMMEDIATE, IMMEDIATE))
        assert len(log) == 4
        assert log.dropped == 3
        assert [f.rule_name for f in log.all()] == ["r3", "r4", "r5", "r6"]
        log.clear()
        assert len(log) == 0 and log.dropped == 0

    def test_facade_exports_dropped_as_component_stat(self):
        db = HiPAC(lock_timeout=2.0, firing_log_capacity=2)
        db.define_class(ClassDef("A", attributes(("v", "int"))))
        db.create_rule(Rule(
            name="R", event=on_create("A"), condition=Condition.true(),
            action=Action.call(lambda ctx: None),
        ))
        for _ in range(5):
            with db.transaction() as txn:
                db.create("A", {"v": 0}, txn)
        assert db.firing_log().dropped > 0
        collected = db.metrics.collected()
        assert collected["obs_firing_log_dropped"] == \
            db.firing_log().dropped


class TestSlowLog:
    def test_threshold_and_ring(self):
        log = SlowLog(threshold=0.010, capacity=2)
        assert log.note("condition", "fast", 0.001) is None
        entry = log.note("condition", "slow", 0.020, coupling=IMMEDIATE)
        assert entry is not None and entry.tags["coupling"] == IMMEDIATE
        log.note("action", "slow2", 0.030)
        log.note("action", "slow3", 0.040)
        assert len(log) == 2 and log.dropped == 1
        assert "slow3" in log.format()

    def test_disabled_slow_log_never_records(self):
        log = SlowLog(threshold=0.0, enabled=False)
        assert log.note("condition", "x", 1.0) is None
        assert len(log) == 0

    def test_slow_rule_surfaces_through_facade(self):
        import time as _time
        db = HiPAC(lock_timeout=2.0, slow_threshold=0.001)
        db.define_class(ClassDef("A", attributes(("v", "int"))))
        db.create_rule(Rule(
            name="sluggish", event=on_create("A"),
            condition=Condition.true(),
            action=Action.call(lambda ctx: _time.sleep(0.005)),
        ))
        # Action timing is sampled 1-in-N: fire enough times to be seen.
        for _ in range(2 * HOT_PATH_SAMPLE):
            with db.transaction() as txn:
                db.create("A", {"v": 0}, txn)
        entries = db.slow_log.entries("rule-action")
        assert any(e.name == "sluggish" for e in entries)


class TestTracerContract:
    def test_enabled_only_via_start_stop(self):
        tracer = Tracer()
        assert not tracer.enabled
        tracer.record("Application", "ObjectManager", "op")
        tracer.bump("x")
        tracer.start()
        tracer.record("Application", "ObjectManager", "op")
        tracer.bump("x", 2)
        trace = tracer.stop()
        assert not tracer.enabled
        assert len(trace.records) == 1
        assert trace.counters == {"x": 2}
        # stop() drained everything; a fresh start sees a clean slate.
        tracer.start()
        assert tracer.stop().records == []

    def test_null_tracer_cannot_start_and_ignores_observations(self):
        tracer = NullTracer()
        tracer.record("Application", "ObjectManager", "op")
        tracer.bump("x")
        with pytest.raises(RuntimeError):
            tracer.start()
        with pytest.raises(RuntimeError):
            tracer.stop()
        assert not tracer.enabled


class TestExportsAndFacade:
    def test_prometheus_text_shape(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("rule_firings_total", ec="immediate").inc(3)
        registry.histogram("commit_seconds").observe(0.004)
        registry.add_collector(lambda: {"live_transactions": 2})
        text = prometheus_text(registry)
        assert '# TYPE hipac_rule_firings_total counter' in text
        assert 'hipac_rule_firings_total{ec="immediate"} 3' in text
        assert '# TYPE hipac_commit_seconds histogram' in text
        assert 'le="+Inf"' in text
        assert "hipac_commit_seconds_count 1" in text
        assert "hipac_live_transactions 2" in text

    def test_metrics_report_and_render_tree(self):
        db = _tracing_db()
        db.create_rule(Rule(
            name="R", event=on_create("A"), condition=Condition.true(),
            action=Action.call(lambda ctx: None),
        ))
        with db.transaction() as txn:
            db.create("A", {"v": 0}, txn)
        report = db.metrics_report()
        assert "om_operation_seconds" in report or "== metrics ==" in report
        assert "rule_firings_total" in db.prometheus_metrics()
        root = db.spans.last_root()
        rendered = render_span_tree(root)
        assert "fire:R" in rendered and rendered.startswith("event:")

    def test_observability_off_switch(self):
        db = HiPAC(lock_timeout=2.0, observability=False)
        db.define_class(ClassDef("A", attributes(("v", "int"))))
        with db.transaction() as txn:
            db.create("A", {"v": 0}, txn)
        assert not db.metrics.enabled
        assert not db.slow_log.enabled
        assert db.spans.roots() == []
        snapshot = db.metrics.collect()
        assert all(h["count"] == 0
                   for h in snapshot["histograms"].values())

    def test_observability_rejects_unknown_level(self):
        with pytest.raises(ValueError):
            HiPAC(observability="bogus")

    def test_stats_obs_section(self):
        db = _tracing_db()
        db.create_rule(Rule(
            name="R", event=on_create("A"), condition=Condition.true(),
            action=Action.call(lambda ctx: None),
        ))
        with db.transaction() as txn:
            db.create("A", {"v": 0}, txn)
        obs = db.stats()["obs"]
        assert obs["spans_retained"] >= 1
        assert "firing_log_dropped" in obs
