"""Temporal and composite events: absolute, relative, periodic timers and
disjunction/sequence compositions (paper §2.1), on a deterministic virtual
clock.

Run:  python examples/temporal_monitoring.py

The scenario is a plant-monitoring application: periodic status reports, a
watchdog that fires if a sensor reading is not followed by an operator
acknowledgement within a deadline, and an escalation on the *sequence*
"alarm then shutdown".
"""

from repro import (
    Action,
    ClassDef,
    Condition,
    HiPAC,
    Rule,
    Sequence,
    VirtualClock,
    after,
    attributes,
    every,
    external,
)


def main() -> None:
    clock = VirtualClock()
    db = HiPAC(clock=clock)
    db.define_class(ClassDef("Reading", attributes(
        "sensor", ("value", "number"))))

    db.define_event("alarm", "sensor")
    db.define_event("ack", "sensor")
    db.define_event("shutdown", "unit")

    console = []

    # 1. Periodic: a status report every 60 (virtual) seconds.
    db.create_rule(Rule(
        name="status-report",
        event=every(60.0, info="status"),
        condition=Condition.true(),
        action=Action.call(lambda ctx: console.append(
            "t=%5.0f  status report" % ctx.signal.timestamp)),
    ))

    # 2. Relative: 30 seconds after every alarm, check for an operator ack.
    acked = set()
    db.create_rule(Rule(
        name="record-ack",
        event=external("ack", "sensor"),
        condition=Condition.true(),
        action=Action.call(
            lambda ctx: acked.add(ctx.bindings["sensor"])),
    ))
    db.create_rule(Rule(
        name="ack-watchdog",
        event=after(external("alarm", "sensor"), 30.0, info="watchdog"),
        condition=Condition(guard=lambda bindings, results: True),
        action=Action.call(lambda ctx: console.append(
            "t=%5.0f  WATCHDOG: alarm unacknowledged for 30s%s"
            % (ctx.signal.timestamp,
               "" if not acked else " (acked sensors: %s)" % sorted(acked)))),
    ))

    # 3. Sequence: an alarm followed by a shutdown escalates to the duty
    #    manager.
    db.create_rule(Rule(
        name="escalate",
        event=Sequence(external("alarm", "sensor"),
                       external("shutdown", "unit")),
        condition=Condition.true(),
        action=Action.call(lambda ctx: console.append(
            "t=%5.0f  ESCALATION: alarm on %s then shutdown of %s"
            % (ctx.signal.timestamp,
               ctx.bindings.get("event_0_sensor"),
               ctx.bindings.get("event_1_unit")))),
    ))

    # ------------------------------------------------------------ scenario
    print("t=0: plant starts")
    db.advance_time(90)                                   # two status reports
    db.signal_event("alarm", {"sensor": "boiler-1"})
    console.append("t=%5.0f  operator sees alarm" % clock.now())
    db.advance_time(10)
    db.signal_event("shutdown", {"unit": "line-3"})       # completes sequence
    db.advance_time(40)                                   # watchdog at +30

    db.signal_event("alarm", {"sensor": "boiler-2"})
    db.advance_time(10)
    db.signal_event("ack", {"sensor": "boiler-2"})        # acked in time
    db.advance_time(120)

    print()
    for line in console:
        print(line)
    print()
    print("(two watchdog lines: the first alarm was never acknowledged;")
    print(" the second fired its timer too but the ack was recorded first)")


if __name__ == "__main__":
    main()
