"""Rule-base analysis and debugging — the paper's §7 future work, built.

Run:  python examples/rulebase_analysis.py

"As the rule base for an application grows, problems due to unexpected
interactions among rules become more likely. ... Future research will
produce the tools and techniques needed to develop large, complex rule
bases."

This example builds a small order-processing rule base with a deliberate
bug (a triggering cycle) and shows the three tools at work:

* the triggering-graph analyzer (cycles, write conflicts, strata),
* the firing explainer (``explain`` / ``why_not``),
* the transaction-tree renderer.
"""

from repro import (
    Action,
    AttrType,
    AttributeDef,
    ClassDef,
    Condition,
    CreateObject,
    HiPAC,
    Rule,
    UpdateObject,
    on_create,
    on_update,
)
from repro.rules.actions import DatabaseStep
from repro.tools import (
    Effect,
    RuleBaseAnalyzer,
    analyze_rule_base,
    explain,
    render_transaction_tree,
    why_not,
)


def main() -> None:
    db = HiPAC()
    db.define_class(ClassDef("Order", (
        AttributeDef("item", AttrType.STRING, required=True),
        AttributeDef("status", AttrType.STRING, default="new"),
    )))
    db.define_class(ClassDef("Invoice", (
        AttributeDef("order", AttrType.OID),
        AttributeDef("total", AttrType.NUMBER, default=0.0),
    )))
    db.define_class(ClassDef("AuditEntry", (
        AttributeDef("note", AttrType.STRING, default=""),
    )))

    # A sensible rule: every order gets an invoice.
    db.create_rule(Rule(
        name="order-to-invoice",
        event=on_create("Order"),
        condition=Condition.true(),
        action=Action.call(lambda ctx: ctx.create(
            "Invoice", {"order": ctx.bindings["oid"]})),
    ))
    # Another: every invoice is audited.
    db.create_rule(Rule(
        name="invoice-audit",
        event=on_create("Invoice"),
        condition=Condition.true(),
        action=Action.of(DatabaseStep(
            CreateObject("AuditEntry", {"note": "invoiced"}))),
    ))
    # THE BUG (never enabled!): auditing that creates an order again.
    buggy = Rule(
        name="audit-reorders",
        event=on_create("AuditEntry"),
        condition=Condition.true(),
        action=Action.of(DatabaseStep(CreateObject("Order", {"item": "?"}))),
        enabled=True,
    )
    db.create_rule(buggy)
    db.disable_rule("audit-reorders")   # a colleague noticed just in time

    # ------------------------------------------------- static analysis
    print("static analysis of the rule base")
    print("--------------------------------")
    report = analyze_rule_base(
        db,
        # order-to-invoice uses a callable action; declare its effect:
        extra_effects={"order-to-invoice": [Effect.create("Invoice")]})
    print(report.format())
    print()
    if report.has_potential_infinite_cascade():
        print("=> the analyzer found the potential infinite cascade the")
        print("   disabled rule would cause if re-enabled.")
    print()

    # ------------------------------------------------- dynamic explanation
    print("dynamic firing explanation")
    print("--------------------------")
    with db.transaction() as txn:
        db.create("Order", {"item": "widget"}, txn)
        top = txn
    print(explain(db.firing_log()))
    print()
    print("transaction tree of that request:")
    print(render_transaction_tree(top))
    print()

    # ------------------------------------------------- why-not debugging
    print("why-not debugging")
    print("-----------------")
    print(why_not(db, "audit-reorders"))
    print(why_not(db, "order-to-invoice"))
    print(why_not(db, "no-such-rule"))


if __name__ == "__main__":
    main()
