"""The Securities Analyst's Assistant — the paper's example application
(§4.2, Figure 4.2).

Run:  python examples/securities_assistant.py

Three kinds of application programs run over HiPAC:

* **Ticker** (one per quote source) writes price quotes into the database;
* **Display** (one per analyst) renders ticker windows, trades, portfolios;
* **Trader** (one per trading service) executes trades and signals the
  SAA-defined ``trade-executed`` event.

The programs never talk to each other — every interaction flows through
rule firings, with the paper's coupling ("condition and action together in
a separate transaction").  The analyst's standing instruction "buy 500
shares of Xerox for client A when the price reaches 50" is a *rule*, not
code.
"""

from repro import HiPAC
from repro.saa import SecuritiesAssistant
from repro.workloads import MarketDataGenerator


def main() -> None:
    db = HiPAC()
    saa = SecuritiesAssistant(db)  # the paper's separate coupling

    ticker = saa.add_ticker("NYSE")
    alice = saa.add_display("alice")
    bob = saa.add_display("bob")
    trader = saa.add_trader("TRDSVC")

    # The paper's trading rule:
    #   Event:     update Xerox price
    #   Condition: where new price = 50
    #   Action:    send request to buy 500 shares for client A
    saa.add_trading_rule(client="client-A", symbol="XRX", shares=500,
                         limit=50.0, service="TRDSVC")

    print("streaming 400 quotes from the (synthetic) wire service...")
    feed = MarketDataGenerator(["XRX", "IBM", "DEC"], seed=3,
                               initial_price=45.0, step=2.0)
    for quote in feed.stream(400):
        ticker.push_quote(quote.symbol, quote.price)
    saa.drain()

    print()
    print("alice's ticker window (last 5 quotes):")
    for entry in alice.ticker_window[-5:]:
        print("   %-4s %8.2f" % (entry.symbol, entry.price))
    print("bob's window length matches alice's: %s"
          % (len(bob.ticker_window) == len(alice.ticker_window)))

    print()
    print("trades executed by the trading service:", trader.stats["trades"])
    for trade in alice.trade_log:
        print("   bought %(shares)d %(symbol)s @ %(price).2f for %(client)s"
              % trade)
    print("alice's portfolio view:", dict(alice.portfolio_view))

    print()
    print("the §4.2 observations, measured:")
    print("   direct program-to-program interactions : %d"
          % saa.direct_program_interactions())
    print("   interactions mediated by rule firings  : %d"
          % saa.rule_mediated_interactions())
    print("   rules installed                        : %d"
          % len(db.rule_names()))


if __name__ == "__main__":
    main()
