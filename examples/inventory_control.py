"""Inventory control: the classic active-database features — integrity
constraints, referential integrity, derived data, and alerters — all
expressed as ECA rules (paper §1/§2: "Integrity constraints, access
constraints, derived data, alerters, and other active DBMS features can all
be expressed as ECA rules").

Run:  python examples/inventory_control.py
"""

from repro import (
    Attr,
    AttrType,
    AttributeDef,
    ClassDef,
    HiPAC,
    IntegrityViolation,
    Query,
)
from repro.declarative import (
    Alerter,
    CASCADE,
    DerivedAttribute,
    DomainConstraint,
    ReferentialConstraint,
    install_alerter,
    install_derived_attribute,
    install_domain_constraint,
    install_referential_constraint,
)
from repro.conditions.condition import Condition
from repro.events.spec import on_update


def main() -> None:
    db = HiPAC()
    db.define_class(ClassDef("Warehouse", (
        AttributeDef("city", AttrType.STRING, required=True),
        AttributeDef("total_stock", AttrType.NUMBER, default=0),
    )))
    db.define_class(ClassDef("Item", (
        AttributeDef("sku", AttrType.STRING, required=True, indexed=True),
        AttributeDef("warehouse", AttrType.OID),
        AttributeDef("quantity", AttrType.INT, default=0),
        AttributeDef("reorder_level", AttrType.INT, default=10),
    )))

    # 1. Domain constraint: quantities never go negative (checked at commit,
    #    abort contingency).
    install_domain_constraint(db, DomainConstraint(
        "non-negative-quantity", "Item", Attr("quantity") >= 0))

    # 2. Referential integrity: items must reference a live warehouse;
    #    deleting a warehouse cascades to its items.
    install_referential_constraint(db, ReferentialConstraint(
        "item-warehouse", "Item", "warehouse", "Warehouse",
        on_delete=CASCADE))

    # 3. Derived data: warehouse.total_stock = sum(item.quantity).
    install_derived_attribute(db, DerivedAttribute(
        "warehouse-total", "Warehouse", "total_stock",
        "Item", "warehouse", "quantity", aggregate="sum"))

    # 4. Alerter: page the buyer when an item drops to its reorder level.
    pages = []
    install_alerter(db, Alerter(
        "reorder",
        event=on_update("Item", attrs=["quantity"]),
        condition=Condition.of(
            Query("Item", Attr("quantity") <= Attr("reorder_level"))),
        notify=lambda ctx: pages.extend(ctx.results[0].values("sku")),
        coupling="immediate",
    ))

    # ------------------------------------------------------------ workload
    with db.transaction() as txn:
        boston = db.create("Warehouse", {"city": "Boston"}, txn)
        widget = db.create("Item", {"sku": "WIDGET", "warehouse": boston,
                                    "quantity": 100}, txn)
        gadget = db.create("Item", {"sku": "GADGET", "warehouse": boston,
                                    "quantity": 40}, txn)

    with db.transaction() as txn:
        print("Boston total stock (derived):",
              db.read(boston, txn)["total_stock"])

    # Ship 95 widgets — crosses the reorder level, the alerter pages.
    with db.transaction() as txn:
        db.update(widget, {"quantity": 5}, txn)
    print("pages sent by the reorder alerter:", pages)

    with db.transaction() as txn:
        print("Boston total stock after shipment:",
              db.read(boston, txn)["total_stock"])

    # Try to oversell — the integrity constraint aborts the transaction.
    txn = db.begin()
    try:
        db.update(gadget, {"quantity": -10}, txn)
        db.commit(txn)
    except IntegrityViolation as exc:
        print("oversell rejected:", exc)
    with db.transaction() as txn:
        print("GADGET quantity preserved:", db.read(gadget, txn)["quantity"])

    # Close the warehouse — referential CASCADE removes its items.
    with db.transaction() as txn:
        db.delete(boston, txn)
    with db.transaction() as txn:
        remaining = db.query(Query("Item"), txn)
    print("items remaining after closing Boston (CASCADE):", len(remaining))


if __name__ == "__main__":
    main()
