"""Quickstart: define a class, create ECA rules, watch coupling modes work.

Run:  python examples/quickstart.py

This walks the core of the HiPAC model (McCarthy & Dayal, SIGMOD 1989):

1. an object class and some instances;
2. a rule with an *event* (price updates), a *condition* (a query), and an
   *action* (a Python callable over the firing context);
3. the three E-C coupling modes side by side — immediate (preempts the
   operation), deferred (runs just before commit), separate (own top-level
   transaction on its own thread).
"""

from repro import (
    Action,
    Attr,
    ClassDef,
    Condition,
    HiPAC,
    Query,
    Rule,
    attributes,
    on_update,
)


def main() -> None:
    db = HiPAC()

    # ------------------------------------------------------------- schema
    db.define_class(ClassDef("Stock", attributes(
        "symbol", ("price", "number"))))

    log = []

    def watcher(mode):
        return Rule(
            name="watch-%s" % mode,
            event=on_update("Stock", attrs=["price"]),
            condition=Condition.of(Query("Stock", Attr("price") > 100.0)),
            action=Action.call(
                lambda ctx: log.append((mode, sorted(
                    ctx.results[0].values("symbol"))))),
            ec_coupling=mode,
        )

    for mode in ("immediate", "deferred", "separate"):
        db.create_rule(watcher(mode))

    # --------------------------------------------------------- trigger it
    with db.transaction() as txn:
        xrx = db.create("Stock", {"symbol": "XRX", "price": 45.0}, txn)
        ibm = db.create("Stock", {"symbol": "IBM", "price": 95.0}, txn)
        print("created XRX@45, IBM@95 — no rule fires (condition is false)")
        db.update(ibm, {"price": 120.0}, txn)
        print("updated IBM -> 120:")
        print("  fired so far (inside the transaction):",
              [entry for entry in log])
        db.update(xrx, {"price": 130.0}, txn)
        log_before_commit = list(log)
    db.drain()

    print("fired inside the transaction :",
          [entry[0] for entry in log_before_commit])
    print("fired in total               :", sorted({e[0] for e in log}))
    print()
    print("firing log:")
    for firing in db.firing_log().all():
        print("  rule=%-16s E-C=%-9s satisfied=%-5s cond-txn=%s action-txn=%s"
              % (firing.rule_name, firing.ec_coupling, firing.satisfied,
                 firing.condition_txn, firing.action_txn))

    # --------------------------------------------- rules are data objects
    print()
    with db.transaction() as txn:
        rule_rows = db.query(Query("HiPAC::Rule"), txn)
        print("rules stored as first-class objects in class HiPAC::Rule:")
        for row in rule_rows:
            print("   %-18s enabled=%s E-C=%s" % (
                row["name"], row["enabled"], row["ec_coupling"]))

    stats = db.stats()
    print()
    print("condition evaluations: %d (answered from the condition graph: %d)"
          % (stats["conditions"]["evaluations"],
             stats["conditions"]["graph_answers"]))


if __name__ == "__main__":
    main()
